package txn

import (
	"errors"
	"strings"
	"testing"
)

func TestRunAllSucceed(t *testing.T) {
	var log []string
	tr := (&Transaction{}).
		Add("a", func() error { log = append(log, "a"); return nil }, func() error { log = append(log, "undo-a"); return nil }).
		Add("b", func() error { log = append(log, "b"); return nil }, nil)
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "a,b" {
		t.Errorf("log = %v", log)
	}
	if tr.Completed() != 2 || tr.Len() != 2 {
		t.Errorf("completed %d / len %d", tr.Completed(), tr.Len())
	}
}

func TestRunCompensatesInReverse(t *testing.T) {
	var log []string
	boom := errors.New("boom")
	tr := (&Transaction{}).
		Add("a", func() error { log = append(log, "a"); return nil }, func() error { log = append(log, "undo-a"); return nil }).
		Add("b", func() error { log = append(log, "b"); return nil }, func() error { log = append(log, "undo-b"); return nil }).
		Add("c", func() error { return boom }, func() error { t.Error("undo of failed step must not run"); return nil })
	err := tr.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `"c"`) {
		t.Errorf("error does not name the failing step: %v", err)
	}
	if strings.Join(log, ",") != "a,b,undo-b,undo-a" {
		t.Errorf("log = %v, want reverse compensation order", log)
	}
	if tr.Completed() != 2 {
		t.Errorf("completed = %d, want 2", tr.Completed())
	}
}

func TestNilUndoSkipped(t *testing.T) {
	ran := false
	tr := (&Transaction{}).
		Add("a", func() error { return nil }, nil).
		Add("b", func() error { ran = true; return errors.New("fail") }, nil)
	if err := tr.Run(); err == nil {
		t.Fatal("expected failure")
	}
	if !ran {
		t.Fatal("step b never ran")
	}
}

func TestRollbackFailureEscalates(t *testing.T) {
	cause := errors.New("step failed")
	undoErr := errors.New("undo failed")
	tr := (&Transaction{}).
		Add("a", func() error { return nil }, func() error { return undoErr }).
		Add("b", func() error { return cause }, nil)
	err := tr.Run()
	var re *RollbackError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RollbackError", err, err)
	}
	if re.FailedUndo != "a" || !errors.Is(re, cause) {
		t.Errorf("rollback error = %+v", re)
	}
	if !strings.Contains(re.Error(), "undo failed") {
		t.Errorf("Error() = %q", re.Error())
	}
}

func TestMissingDoRejected(t *testing.T) {
	tr := (&Transaction{}).Add("bad", nil, nil)
	if err := tr.Run(); err == nil {
		t.Fatal("nil Do accepted")
	}
}

func TestRunResetsCompleted(t *testing.T) {
	n := 0
	tr := (&Transaction{}).Add("a", func() error { n++; return nil }, nil)
	tr.Run()
	tr.Run()
	if tr.Completed() != 1 {
		t.Errorf("completed = %d after rerun, want 1", tr.Completed())
	}
	if n != 2 {
		t.Errorf("step ran %d times, want 2", n)
	}
}

// TestPanicInDoCompensates: a Do that panics is recovered into a step
// failure and the completed prefix is still rolled back in reverse —
// the compensation guarantee survives buggy step code.
func TestPanicInDoCompensates(t *testing.T) {
	var undone []string
	tr := (&Transaction{}).
		Add("a", func() error { return nil }, func() error { undone = append(undone, "a"); return nil }).
		Add("b", func() error { return nil }, func() error { undone = append(undone, "b"); return nil }).
		Add("boom", func() error { panic("kaboom") }, nil)
	err := tr.Run()
	if err == nil {
		t.Fatal("panicking Do reported success")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Step != "boom" {
		t.Fatalf("err = %T %v, want *PanicError for step boom", err, err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error hides the panic value: %q", err.Error())
	}
	if len(undone) != 2 || undone[0] != "b" || undone[1] != "a" {
		t.Fatalf("compensation order = %v, want [b a]", undone)
	}
}

// TestPanicInUndoIsRollbackError: a panicking compensation surfaces as
// a *RollbackError (landscape needs a human), not an unwound goroutine.
func TestPanicInUndoIsRollbackError(t *testing.T) {
	tr := (&Transaction{}).
		Add("a", func() error { return nil }, func() error { panic("undo kaboom") }).
		Add("fail", func() error { return ErrAborted }, nil)
	err := tr.Run()
	var re *RollbackError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RollbackError", err, err)
	}
	var pe *PanicError
	if !errors.As(re.UndoErr, &pe) || pe.Step != "a" {
		t.Fatalf("UndoErr = %T %v, want *PanicError for step a", re.UndoErr, re.UndoErr)
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("rollback error lost the original cause: %v", err)
	}
}

// TestPanicSkipsNilUndo: rollback after a panic skips nil Undo steps
// and still compensates the rest.
func TestPanicSkipsNilUndo(t *testing.T) {
	var undone []string
	tr := (&Transaction{}).
		Add("a", func() error { return nil }, func() error { undone = append(undone, "a"); return nil }).
		Add("read-only", func() error { return nil }, nil).
		Add("boom", func() error { panic(42) }, nil)
	err := tr.Run()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("err = %T %v, want *PanicError carrying 42", err, err)
	}
	if len(undone) != 1 || undone[0] != "a" {
		t.Fatalf("undone = %v, want [a]", undone)
	}
}
