package simulator

import (
	"context"
	"testing"
	"time"

	"autoglobe/internal/agent"
	"autoglobe/internal/chaos"
	"autoglobe/internal/wire"
)

// chaosDispatch is a dispatcher configuration that retries eagerly
// without wall-clock sleeps, so a 24-hour chaos run finishes in
// milliseconds while still exercising the full retry/backoff paths.
func chaosDispatch() agent.DispatchConfig {
	return agent.DispatchConfig{
		Timeout:     time.Millisecond,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
		Sleep:       func(time.Duration) {},
		Seed:        7,
	}
}

// TestChaosConvergesToFaultFreeLandscape is the acceptance run of the
// robustness harness: a full simulated day over the distributed control
// plane, with a seeded fault schedule injecting coordinator crashes
// (journal recovery + epoch bump), duplicated deliveries, held and
// late-released messages, and short partitions — and the landscape
// safety invariants asserted EVERY minute. After the quiet tail the
// faulted run must converge to the same canonical landscape as a
// fault-free run of the identical configuration: the faults were fully
// absorbed, not merely survived.
func TestChaosConvergesToFaultFreeLandscape(t *testing.T) {
	run := func(t *testing.T, drv *chaos.Driver) (*Simulator, int) {
		t.Helper()
		lb := wire.NewLoopback()
		t.Cleanup(func() { lb.Close() })
		sim := declaredSim(t, func(c *Config) {
			tuneForActions(c)
			dc := &DistributedConfig{Transport: lb, Dispatch: chaosDispatch()}
			if drv != nil {
				dc.JournalDir = t.TempDir()
				dc.Chaos = drv
			}
			c.Distributed = dc
		})
		if drv != nil {
			drv.Bind(lb)
			drv.Crash = func() error {
				_, err := sim.Plane().CrashCoordinator(context.Background())
				return err
			}
		}
		minutes := 24 * 60
		for m := 0; m < minutes; m++ {
			if err := sim.Step(m); err != nil {
				t.Fatalf("minute %d: %v", m, err)
			}
			if err := sim.CheckInvariants(false); err != nil {
				t.Fatalf("minute %d: %v", m, err)
			}
		}
		if err := sim.CheckInvariants(true); err != nil {
			t.Fatalf("strict invariants at end of run: %v", err)
		}
		return sim, minutes
	}

	base, _ := run(t, nil)
	want := base.Landscape()

	hosts := base.Deployment().Cluster().Names()
	plan := chaos.NewPlan(11, 24*60, hosts, chaos.DefaultProfile())
	drv := chaos.NewDriver(plan, nil)
	sim, _ := run(t, drv)

	if drv.Remaining() != 0 {
		t.Errorf("chaos plan has %d injections left unapplied", drv.Remaining())
	}
	stats := drv.Stats()
	if stats[chaos.KindCrash] == 0 {
		t.Fatalf("chaos stats = %v: the plan crashed the coordinator zero times — the run proves nothing", stats)
	}
	total := 0
	for _, n := range stats {
		total += n
	}
	if total < 20 {
		t.Fatalf("chaos stats = %v: only %d injections over a full day", stats, total)
	}

	// Every crash reopened the journal under a fresh epoch.
	cj := sim.Plane().Dispatcher().Journal()
	if cj == nil {
		t.Fatal("chaos run lost its journal")
	}
	if got, wantEpoch := cj.Epoch(), uint64(1+stats[chaos.KindCrash]); got != wantEpoch {
		t.Errorf("journal epoch = %d, want %d (initial open + one per crash)", got, wantEpoch)
	}

	if got := sim.Landscape(); got != want {
		t.Errorf("faulted run did not converge to the fault-free landscape\n got:\n%s\nwant:\n%s", got, want)
	}
}
