package simulator

import (
	"testing"

	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
	"autoglobe/internal/wire"
)

// TestArchiveBackedRunSurvivesCrash is the simulator-level acceptance
// test of the disk-backed archive: a full simulated day driven through
// the real control loop (monitors, controller actions, instance churn)
// into a backed archive, abandoned without Close — the crash — and then
// reopened by a second simulator over the same directory. Every
// entity's recovered DayProfile must be byte-identical: replay applies
// the same float operations in the same order the live run did.
func TestArchiveBackedRunSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := PaperConfig(service.FullMobility, 1.25)
	cfg.Hours = 25
	cfg.ArchiveDir = dir
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	arch := sim.Archive()
	entities := arch.Entities()
	if len(entities) == 0 {
		t.Fatal("run recorded no entities")
	}
	// Crash: no sim.Close(). Every minute was committed by Maintain.
	re, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	rearch := re.Archive()
	if got := rearch.Entities(); len(got) != len(entities) {
		t.Fatalf("recovered %d entities, want %d", len(got), len(entities))
	}
	for _, entity := range entities {
		before := arch.DayProfile(entity)
		after := rearch.DayProfile(entity)
		for m := range before {
			if before[m] != after[m] {
				t.Fatalf("%s: DayProfile[%d] diverges after crash recovery: %v != %v",
					entity, m, after[m], before[m])
			}
		}
		if arch.Len(entity) != rearch.Len(entity) {
			t.Fatalf("%s: ring length %d recovered, want %d",
				entity, rearch.Len(entity), arch.Len(entity))
		}
	}
}

// TestBackedRunResumesClock pins the restart semantics of a backed
// run: the store's append rule is monotone per entity, so a run over a
// reopened archive must start past the restored high-water mark — not
// replay minute 0 over it and die on the first Record.
func TestBackedRunResumesClock(t *testing.T) {
	dir := t.TempDir()
	cfg := PaperConfig(service.FullMobility, 1.0)
	cfg.Hours = 2
	cfg.ArchiveDir = dir
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.StartMinute(); got != 0 {
		t.Fatalf("fresh archive starts at minute %d, want 0", got)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.StartMinute(); got != 120 {
		t.Fatalf("resumed run starts at minute %d, want 120", got)
	}
	if _, err := re.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	arch := re.Archive()
	last, ok := arch.LastMinute()
	if !ok || last != 239 {
		t.Fatalf("archive high-water mark %d (ok=%v) after resumed run, want 239", last, ok)
	}
}

// TestProactiveReducesSLAViolations is the ISSUE's headline experiment:
// with the forecast wired into the controller as a dedicated trigger
// path, the proactive runs must accumulate measurably fewer
// SLA-violation minutes (host minutes above the 80 % overload level)
// than the identical reactive runs. The landscape is chaotic — one
// action early in a run butterflies into a different trajectory — so
// the comparison runs the same three fixed seeds for both policies and
// compares per-seed and in aggregate. Everything is deterministic:
// this pins behaviour, not luck.
func TestProactiveReducesSLAViolations(t *testing.T) {
	const hours = 72
	violation := func(r *Result) int {
		total := 0
		for _, h := range r.Hosts {
			total += r.OverloadMinutes[h]
		}
		return total
	}
	var rv, pv, triggers int
	for _, seed := range []uint64{1, 7, 42} {
		reactive := run(t, service.FullMobility, 1.30, hours, func(c *Config) {
			c.Seed = seed
		})
		proactive := run(t, service.FullMobility, 1.30, hours, func(c *Config) {
			c.Seed = seed
			c.ForecastHorizon = 45
		})
		if proactive.ProactiveTriggers == 0 {
			t.Fatalf("seed %d: proactive run raised no forecast triggers", seed)
		}
		if got := proactive.TriggerCount[monitor.ServerForecastOverload] +
			proactive.TriggerCount[monitor.ServiceForecastOverload]; got != proactive.ProactiveTriggers {
			t.Fatalf("forecast trigger kinds count %d, ProactiveTriggers %d", got, proactive.ProactiveTriggers)
		}
		r, p := violation(reactive), violation(proactive)
		t.Logf("seed %2d: SLA-violation minutes reactive %4d, proactive %4d (%d forecast triggers)",
			seed, r, p, proactive.ProactiveTriggers)
		if p >= r {
			t.Errorf("seed %d: proactive should reduce SLA-violation minutes: reactive %d, proactive %d", seed, r, p)
		}
		rv, pv, triggers = rv+r, pv+p, triggers+proactive.ProactiveTriggers
	}
	t.Logf("total: reactive %d, proactive %d (%.0f%% reduction, %d forecast triggers)",
		rv, pv, 100*(1-float64(pv)/float64(rv)), triggers)
	if pv >= rv {
		t.Fatalf("proactive control should reduce aggregate SLA-violation minutes: reactive %d, proactive %d", rv, pv)
	}
}

// TestProactiveDistributedRuns: the forecast extension is no longer
// rejected in distributed mode — the predictor reads the coordinator's
// archive, which distributed heartbeats feed exactly like in-process
// observation does.
func TestProactiveDistributedRuns(t *testing.T) {
	cfg := PaperConfig(service.FullMobility, 1.30)
	cfg.Hours = 48
	cfg.ForecastHorizon = 45
	cfg.Distributed = &DistributedConfig{Transport: wire.NewLoopback()}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProactiveTriggers == 0 {
		t.Fatal("distributed proactive run raised no forecast triggers")
	}
}
