package simulator

import (
	"testing"

	"autoglobe/internal/controller"
	"autoglobe/internal/service"
	"autoglobe/internal/spec"
)

const declaredLandscape = `<?xml version="1.0"?>
<landscape name="declared">
  <servers>
    <server name="b1" category="blade" performanceIndex="1" cpus="1" clockMHz="1000" cacheKB="512" memoryMB="2048" swapMB="2048" tempMB="20480"/>
    <server name="b2" category="blade" performanceIndex="1" cpus="1" clockMHz="1000" cacheKB="512" memoryMB="2048" swapMB="2048" tempMB="20480"/>
    <server name="big" category="server" performanceIndex="6" cpus="4" clockMHz="2800" cacheKB="2048" memoryMB="12288" swapMB="12288" tempMB="20480"/>
  </servers>
  <services>
    <service name="app" type="interactive" subsystem="x" minInstances="1" memoryMBPerInstance="1024" baseLoad="0.05" usersPerUnit="150" requestWeight="1" users="200">
      <allowedActions>
        <action>scaleIn</action><action>scaleOut</action><action>move</action>
        <action>scaleUp</action><action>scaleDown</action>
      </allowedActions>
      <instances><instance host="b1"/><instance host="b2"/></instances>
    </service>
    <service name="DB-x" type="database" subsystem="x" minInstances="1" maxInstances="1" minPerformanceIndex="5" memoryMBPerInstance="6144" baseLoad="0.02">
      <instances><instance host="big"/></instances>
    </service>
  </services>
  <rulebases>
    <rulebase trigger="serviceOverloaded" service="app">
      <rule>IF instanceLoad IS high THEN scaleOut IS applicable</rule>
    </rulebase>
    <rulebase trigger="serverOverloaded">
      <rule>IF memLoad IS high THEN move IS applicable</rule>
    </rulebase>
    <rulebase trigger="serverSelection:move">
      <rule>IF tempSpace IS ample THEN score IS applicable</rule>
    </rulebase>
  </rulebases>
  <simulation hours="24" multiplier="1.1" seed="3" userRedistribution="rebalance"
              overloadWatchMinutes="5" protectionMinutes="20">
    <profile service="app">
      <point minute="0" value="0.05"/>
      <point minute="540" value="0.8"/>
      <point minute="720" value="0.6"/>
      <point minute="1020" value="0.75"/>
      <point minute="1200" value="0.1"/>
    </profile>
  </simulation>
</landscape>`

func TestFromLandscapeRuns(t *testing.T) {
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := FromLandscape(l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Minutes != 24*60 {
		t.Errorf("minutes = %d, want declared 24 h", res.Minutes)
	}
	// Multiplier applied to declared users.
	if got := sim.Deployment().UsersOf("app"); got < 219 || got > 221 {
		t.Errorf("app users = %g, want 200 × 1.1", got)
	}
	// The day curve shows up in the average load.
	if !(res.AvgLoad[9*60] > res.AvgLoad[3*60]) {
		t.Error("declared profile not driving the load")
	}
	if err := sim.Deployment().Validate(); err != nil {
		t.Errorf("deployment invalid after declared run: %v", err)
	}
}

func TestFromLandscapeRequiresProfiles(t *testing.T) {
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	l.Simulation.Profiles = nil
	if _, err := FromLandscape(l); err == nil {
		t.Fatal("service with users but no profile accepted")
	}
}

func TestFromLandscapeDefaults(t *testing.T) {
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	l.Simulation.UserRedistribution = ""
	sim, err := FromLandscape(l)
	if err != nil {
		t.Fatal(err)
	}
	if sim.cfg.Mobility != service.ConstrainedMobility {
		t.Errorf("default redistribution = %v, want sticky (constrained)", sim.cfg.Mobility)
	}
	if sim.cfg.Monitor.OverloadWatch != 5 {
		t.Errorf("declared overload watch = %d, want 5", sim.cfg.Monitor.OverloadWatch)
	}
	if sim.cfg.Controller.ProtectionMinutes != 20 {
		t.Errorf("declared protection = %d, want 20", sim.cfg.Controller.ProtectionMinutes)
	}
}

func TestFromLandscapeDeclaredRules(t *testing.T) {
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := FromLandscape(l)
	if err != nil {
		t.Fatal(err)
	}
	cc := sim.cfg.Controller
	if cc.ServiceRules["app"] == nil || cc.ServiceRules["app"]["serviceOverloaded"] == nil {
		t.Fatal("service-specific rule base not registered")
	}
	// Declared bases extend the defaults, they do not replace them.
	defaults := controller.DefaultActionRules()
	if got, want := cc.ServiceRules["app"]["serviceOverloaded"].Len(),
		defaults["serviceOverloaded"].Len()+1; got != want {
		t.Errorf("service-specific base has %d rules, want default %d + 1 declared", got, want)
	}
	if cc.ActionRules == nil || cc.ActionRules["serverOverloaded"] == nil {
		t.Fatal("extended serverOverloaded base missing")
	}
	if got, want := cc.ActionRules["serverOverloaded"].Len(),
		defaults["serverOverloaded"].Len()+1; got != want {
		t.Errorf("serverOverloaded base has %d rules, want %d", got, want)
	}
	if cc.SelectionRules == nil || cc.SelectionRules[service.ActionMove] == nil {
		t.Fatal("extended move selection base missing")
	}
}

func TestFromLandscapeRejectsBadRuleTargets(t *testing.T) {
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	l.RuleBases = append(l.RuleBases, spec.RuleBaseSpec{
		Trigger: "serverSelection:fly",
		Rules:   []string{"IF cpuLoad IS low THEN score IS applicable"},
	})
	if _, err := FromLandscape(l); err == nil {
		t.Fatal("unknown selection action accepted")
	}
	l2, _ := spec.ParseString(declaredLandscape)
	l2.RuleBases = append(l2.RuleBases, spec.RuleBaseSpec{
		Trigger: "somethingElse",
		Rules:   []string{"IF cpuLoad IS low THEN move IS applicable"},
	})
	if _, err := FromLandscape(l2); err == nil {
		t.Fatal("unknown trigger accepted")
	}
}
