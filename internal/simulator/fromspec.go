package simulator

import (
	"fmt"
	"strings"

	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
	"autoglobe/internal/spec"
	"autoglobe/internal/workload"
)

// FromLandscape builds a fully configured simulator from a declarative
// landscape description: servers, services and the initial allocation
// come from the declaration; the optional <simulation> section supplies
// workload profiles and tunables; declared <rulebase> sections extend
// the controller's built-in rule bases ("the rules for the fuzzy
// controller can be specified" in the XML language).
func FromLandscape(l *spec.Landscape) (*Simulator, error) {
	return FromLandscapeConfig(l, nil)
}

// FromLandscapeConfig builds a simulator from a declarative landscape
// like FromLandscape, but lets the caller adjust the derived Config
// before the simulator is assembled — e.g. to attach a Distributed
// control plane or wrap the executor. The adjustment runs after every
// declared tunable has been applied.
func FromLandscapeConfig(l *spec.Landscape, adjust func(*Config)) (*Simulator, error) {
	dep, err := l.BuildDeployment()
	if err != nil {
		return nil, err
	}

	sim := l.Simulation
	if sim == nil {
		sim = &spec.Simulation{}
	}
	multiplier := sim.Multiplier
	if multiplier == 0 {
		multiplier = 1
	}
	// The declared populations are the 100 % baseline; the multiplier
	// scales the sessions actually assigned to instances.
	for _, inst := range dep.Instances() {
		inst.Users *= multiplier
	}
	mobility := service.ConstrainedMobility // sticky users unless declared
	if sim.UserRedistribution == "rebalance" {
		mobility = service.FullMobility
	}
	cfg := PaperConfig(mobility, multiplier)
	if sim.Hours > 0 {
		cfg.Hours = sim.Hours
	}
	cfg.Seed = sim.Seed
	if sim.FluctuationPerHour > 0 {
		cfg.FluctuationPerHour = sim.FluctuationPerHour
	}
	if sim.LoginAffinity > 0 {
		cfg.LoginAffinity = sim.LoginAffinity
	}
	if sim.JitterAmplitude > 0 {
		cfg.JitterAmplitude = sim.JitterAmplitude
	}
	if sim.OverloadThreshold > 0 {
		cfg.Monitor.OverloadThreshold = sim.OverloadThreshold
	}
	if sim.OverloadWatchMinutes > 0 {
		cfg.Monitor.OverloadWatch = sim.OverloadWatchMinutes
	}
	if sim.MemOverloadThreshold > 0 {
		cfg.Monitor.MemOverloadThreshold = sim.MemOverloadThreshold
	}
	if sim.IdleThresholdBase > 0 {
		cfg.Monitor.IdleThresholdBase = sim.IdleThresholdBase
	}
	if sim.IdleWatchMinutes > 0 {
		cfg.Monitor.IdleWatch = sim.IdleWatchMinutes
	}
	if sim.ProtectionMinutes != 0 {
		cfg.Controller.ProtectionMinutes = sim.ProtectionMinutes
	}
	if sim.ForecastHorizon > 0 {
		cfg.ForecastHorizon = sim.ForecastHorizon
	}
	if sim.DBShare > 0 {
		cfg.Cost.DBShare = sim.DBShare
	}
	if sim.CIShare > 0 {
		cfg.Cost.CIShare = sim.CIShare
	}
	cfg.FailuresPerDay = sim.FailuresPerDay

	if err := applyDeclaredRules(&cfg, l); err != nil {
		return nil, err
	}
	if adjust != nil {
		adjust(&cfg)
	}

	gen, err := generatorFromSpec(l, sim, multiplier, cfg.Seed, cfg.JitterAmplitude)
	if err != nil {
		return nil, err
	}
	return NewCustom(cfg, dep, gen)
}

// generatorFromSpec builds the workload generator from declared
// profiles; services without a profile get a flat zero curve (their
// load is purely derived, like databases and central instances).
func generatorFromSpec(l *spec.Landscape, sim *spec.Simulation, multiplier float64, seed uint64, jitterAmp float64) (*workload.Generator, error) {
	profiles := make(map[string]*workload.Profile, len(sim.Profiles))
	for _, p := range sim.Profiles {
		prof, err := p.BuildProfile()
		if err != nil {
			return nil, err
		}
		profiles[p.Service] = prof
	}
	var sources []workload.Source
	for _, svc := range l.Services {
		switch service.Type(svc.Type) {
		case service.TypeInteractive, service.TypeBatch:
		default:
			continue
		}
		prof, ok := profiles[svc.Name]
		if !ok {
			if svc.Users > 0 {
				return nil, fmt.Errorf("simulator: service %q has users but no declared profile", svc.Name)
			}
			prof = workload.Flat(0)
		}
		sources = append(sources, workload.Source{
			Service: svc.Name,
			Users:   svc.Users * multiplier,
			Profile: prof,
		})
	}
	return workload.NewGenerator(workload.Jitter{Seed: seed, Amplitude: jitterAmp}, sources...)
}

// applyDeclaredRules merges <rulebase> sections into the controller
// configuration: trigger names extend the default action-selection
// bases, "serverSelection:<action>" extends the selection base for that
// action, and a service attribute scopes the base to one service.
func applyDeclaredRules(cfg *Config, l *spec.Landscape) error {
	parsed, err := l.ParsedRuleBases()
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return nil
	}
	actionDefaults := controller.DefaultActionRules()
	selectionDefaults := controller.DefaultSelectionRules()
	for key, rules := range parsed {
		trigger, svcName, scoped := strings.Cut(key, "/")
		switch {
		case strings.HasPrefix(trigger, "serverSelection:"):
			if scoped {
				return fmt.Errorf("simulator: server-selection rule base %q cannot be service-specific", key)
			}
			action := service.Action(strings.TrimPrefix(trigger, "serverSelection:"))
			base, ok := selectionDefaults[action]
			if !ok {
				return fmt.Errorf("simulator: rule base for unknown selection action %q", action)
			}
			ext, err := base.Extend(key, rules)
			if err != nil {
				return err
			}
			if cfg.Controller.SelectionRules == nil {
				cfg.Controller.SelectionRules = selectionDefaults
			}
			cfg.Controller.SelectionRules[action] = ext
		default:
			kind := monitor.TriggerKind(trigger)
			base, ok := actionDefaults[kind]
			if !ok {
				return fmt.Errorf("simulator: rule base for unknown trigger %q", trigger)
			}
			ext, err := base.Extend(key, rules)
			if err != nil {
				return err
			}
			if scoped {
				if cfg.Controller.ServiceRules == nil {
					cfg.Controller.ServiceRules = make(map[string]map[monitor.TriggerKind]*fuzzy.RuleBase)
				}
				if cfg.Controller.ServiceRules[svcName] == nil {
					cfg.Controller.ServiceRules[svcName] = make(map[monitor.TriggerKind]*fuzzy.RuleBase)
				}
				cfg.Controller.ServiceRules[svcName][kind] = ext
			} else {
				if cfg.Controller.ActionRules == nil {
					cfg.Controller.ActionRules = actionDefaults
				}
				cfg.Controller.ActionRules[kind] = ext
			}
		}
	}
	return nil
}
