package simulator

import (
	"fmt"
	"sort"
	"strings"

	"autoglobe/internal/controller"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
	"autoglobe/internal/workload"
)

// OverloadLevel is the CPU load above which a server counts as
// overloaded in the evaluation: "several servers become overloaded,
// i.e., have a CPU load of more than 80% for a long time".
const OverloadLevel = 0.80

// The Table 7 acceptance criterion operationalizes "overloaded for a
// long time": an installation cannot handle its user population when
// any server spends more than DefaultOverloadBudget minutes per day
// above OverloadLevel, or suffers one continuous overload episode
// longer than DefaultStreakBudget minutes (interactive requests pile up
// and "the working schedule is screwed up").
const (
	DefaultOverloadBudget = 75 // minutes per day
	DefaultStreakBudget   = 70 // minutes, continuous
)

// SeriesPoint is one sample of a per-(service, host) load series.
type SeriesPoint struct {
	Minute int
	Load   float64
}

// Result captures everything a simulation run produces.
type Result struct {
	Mobility   service.Mobility
	Multiplier float64
	Minutes    int
	Hosts      []string

	// HostLoad holds the per-minute CPU load of every host (clamped to
	// 1, as a real CPU meter would report).
	HostLoad map[string][]float64
	// AvgLoad is the per-minute average over all hosts — the thick line
	// of Figures 12–14.
	AvgLoad []float64
	// ServiceHostSeries holds, for each recorded service, the per-host
	// load series keyed "SVC@Host" — the curves of Figures 15–17.
	ServiceHostSeries map[string][]SeriesPoint
	// OverloadMinutes counts, per host, minutes with raw demand above
	// OverloadLevel.
	OverloadMinutes map[string]int
	// MaxStreak is the longest consecutive overload episode per host.
	MaxStreak map[string]int
	// TriggerCount tallies confirmed monitoring triggers by kind.
	TriggerCount map[monitor.TriggerKind]int
	// Actions is the controller's event log (executed actions, alerts).
	Actions []controller.Event
	// Restarts counts self-healing restarts after injected failures;
	// FailedRestarts counts crashes the restart could not remedy.
	Restarts       int
	FailedRestarts int
	// DemotedHosts counts hosts the liveness detector confirmed dead
	// and removed from the pool (distributed mode); RepooledHosts
	// counts demoted hosts re-admitted after a healed partition.
	DemotedHosts  int
	RepooledHosts int
	// ProactiveTriggers counts controller invocations raised by the
	// forecast extension ahead of a confirmed overload.
	ProactiveTriggers int
	// UserMinutes accumulates, per service, the active user-minutes
	// served; DegradedUserMinutes the share served from hosts above
	// OverloadLevel. Their ratio is the user-experienced degradation —
	// the quantity service level agreements are written against.
	UserMinutes         map[string]float64
	DegradedUserMinutes map[string]float64

	streak map[string]int
}

func newResult(cfg Config, hosts []string) *Result {
	return &Result{
		Mobility:            cfg.Mobility,
		Multiplier:          cfg.Multiplier,
		Hosts:               hosts,
		HostLoad:            make(map[string][]float64, len(hosts)),
		ServiceHostSeries:   make(map[string][]SeriesPoint),
		OverloadMinutes:     make(map[string]int),
		MaxStreak:           make(map[string]int),
		TriggerCount:        make(map[monitor.TriggerKind]int),
		UserMinutes:         make(map[string]float64),
		DegradedUserMinutes: make(map[string]float64),
		streak:              make(map[string]int),
	}
}

// Days returns the simulated duration in days.
func (r *Result) Days() float64 { return float64(r.Minutes) / float64(workload.MinutesPerDay) }

// WorstOverloadPerDay returns the highest per-host overload-minutes per
// day, and that host's name.
func (r *Result) WorstOverloadPerDay() (host string, minutesPerDay float64) {
	days := r.Days()
	if days == 0 {
		return "", 0
	}
	for _, h := range r.Hosts {
		if v := float64(r.OverloadMinutes[h]) / days; v > minutesPerDay || host == "" {
			if v > minutesPerDay {
				host, minutesPerDay = h, v
			} else if host == "" {
				host = h
			}
		}
	}
	return host, minutesPerDay
}

// TotalOverloadPerDay returns the summed overload minutes per day across
// all hosts.
func (r *Result) TotalOverloadPerDay() float64 {
	days := r.Days()
	if days == 0 {
		return 0
	}
	total := 0
	for _, h := range r.Hosts {
		total += r.OverloadMinutes[h]
	}
	return float64(total) / days
}

// Overloaded applies the Table 7 acceptance criterion: the installation
// cannot handle the load when any server is overloaded "for a long time"
// — operationalized as a host exceeding budgetPerDay minutes of >80 %
// CPU per simulated day, or any single overload episode longer than
// streakBudget minutes (a screwed-up working schedule).
func (r *Result) Overloaded(budgetPerDay float64, streakBudget int) bool {
	_, worst := r.WorstOverloadPerDay()
	if worst > budgetPerDay {
		return true
	}
	for _, h := range r.Hosts {
		if r.MaxStreak[h] > streakBudget {
			return true
		}
	}
	return false
}

// ExecutedActions returns only the executed controller actions.
func (r *Result) ExecutedActions() []controller.Event {
	var out []controller.Event
	for _, e := range r.Actions {
		if e.Executed {
			out = append(out, e)
		}
	}
	return out
}

// ActionCounts tallies executed actions by kind.
func (r *Result) ActionCounts() map[service.Action]int {
	out := make(map[service.Action]int)
	for _, e := range r.ExecutedActions() {
		out[e.Decision.Action]++
	}
	return out
}

// Alerts counts administrator alerts (no applicable action found).
func (r *Result) Alerts() int {
	n := 0
	for _, e := range r.Actions {
		if e.Decision == nil && strings.HasPrefix(e.Note, "ALERT") {
			n++
		}
	}
	return n
}

// DegradedFraction returns the fraction of a service's active
// user-minutes served from overloaded hosts.
func (r *Result) DegradedFraction(svc string) float64 {
	total := r.UserMinutes[svc]
	if total == 0 {
		return 0
	}
	return r.DegradedUserMinutes[svc] / total
}

// MeanLoad returns the time-average of the all-host average load.
func (r *Result) MeanLoad() float64 {
	if len(r.AvgLoad) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.AvgLoad {
		sum += v
	}
	return sum / float64(len(r.AvgLoad))
}

// HostSummary is one row of the per-host load table.
type HostSummary struct {
	Host            string
	Mean, Max       float64
	OverloadMinutes int
	MaxStreak       int
}

// Summaries returns per-host load statistics in cluster order.
func (r *Result) Summaries() []HostSummary {
	out := make([]HostSummary, 0, len(r.Hosts))
	for _, h := range r.Hosts {
		series := r.HostLoad[h]
		var sum, max float64
		for _, v := range series {
			sum += v
			if v > max {
				max = v
			}
		}
		mean := 0.0
		if len(series) > 0 {
			mean = sum / float64(len(series))
		}
		out = append(out, HostSummary{
			Host: h, Mean: mean, Max: max,
			OverloadMinutes: r.OverloadMinutes[h],
			MaxStreak:       r.MaxStreak[h],
		})
	}
	return out
}

// String renders a compact run summary.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s scenario, %.0f%% users, %.1f days: mean load %.1f%%, ",
		r.Mobility, r.Multiplier*100, r.Days(), r.MeanLoad()*100)
	host, worst := r.WorstOverloadPerDay()
	fmt.Fprintf(&sb, "worst host %s with %.0f overload min/day", host, worst)
	if n := len(r.ExecutedActions()); n > 0 {
		fmt.Fprintf(&sb, ", %d controller actions", n)
	}
	return sb.String()
}

// SeriesKeys returns the recorded service-host series keys, sorted.
func (r *Result) SeriesKeys() []string {
	out := make([]string, 0, len(r.ServiceHostSeries))
	for k := range r.ServiceHostSeries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
