// Package simulator implements the paper's simulation environment
// (Section 5.1): a discrete-time model of a realistic SAP installation —
// three subsystems (ERP, CRM, BW) with dedicated databases and central
// instances, six kinds of application servers, diurnal user populations,
// the request path application server → central instance → database, and
// the full monitoring/controller feedback loop. Time advances in
// one-minute steps; the paper's 80-hour runs take a few hundred
// milliseconds (its "40-fold acceleration" is unnecessary in a pure
// discrete-event setting).
package simulator

import (
	"fmt"
	"math"
	"math/rand"

	"autoglobe/internal/agent"
	"autoglobe/internal/archive"
	"autoglobe/internal/cluster"
	"autoglobe/internal/controller"
	"autoglobe/internal/forecast"
	"autoglobe/internal/monitor"
	"autoglobe/internal/obs"
	"autoglobe/internal/service"
	"autoglobe/internal/tsdb"
	"autoglobe/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Mobility selects the scenario (static, constrained, full).
	Mobility service.Mobility
	// Multiplier scales the Table 4 user populations ("we run different
	// simulation series and always increase the number of users by 5%").
	Multiplier float64
	// Hours is the simulated duration (80 in the paper).
	Hours int
	// Seed drives load noise and failure injection.
	Seed uint64
	// Monitor holds the load-monitoring tunables (watch times,
	// thresholds).
	Monitor monitor.Params
	// Controller configures the fuzzy controller.
	Controller controller.Config
	// Cost is the request cost model (DB and CI shares).
	Cost workload.CostModel
	// FluctuationPerHour is the fraction of each service's users who log
	// off and reconnect to the currently least-loaded server per hour
	// ("we simulate a fluctuation of the users, i.e., users infrequently
	// log themselves off of the application server they are connected to
	// and reconnect to the currently least-loaded server").
	FluctuationPerHour float64
	// LoginAffinity is the fraction of users joining a rising activity
	// wave (the 8 o'clock login rush) who return to their previous
	// instance; the rest pick the currently least-loaded server. 1 pins
	// every session to its previous home, 0 load-balances every login.
	LoginAffinity float64
	// PeakActivity is the peak fraction of a population active at once.
	PeakActivity float64
	// JitterAmplitude is the load noise amplitude.
	JitterAmplitude float64
	// FailuresPerDay is the expected number of instance crashes per
	// simulated day (failure injection; 0 disables). A crashed instance
	// stops sending heartbeats; after HeartbeatTimeout silent minutes
	// the failure is detected and the controller remedies it with a
	// restart ("failure situations like a program crash are remedied
	// for example with a restart").
	FailuresPerDay float64
	// HeartbeatTimeout is the liveness timeout in minutes (default 2).
	HeartbeatTimeout int
	// DisableController turns the controller off entirely. The static
	// scenario does not need this — its services support no actions —
	// but ablations use it.
	DisableController bool
	// RecordServices lists services whose per-(service, host) load
	// series are recorded, e.g. FI for Figures 15–17.
	RecordServices []string
	// ForecastHorizon, when positive, enables the proactive extension
	// (paper Section 7 / [8]): the controller's forecast scan predicts
	// every host's and service's load over the horizon (in minutes) and
	// raises dedicated forecast triggers ahead of measured overloads,
	// instead of waiting out the watchTime.
	ForecastHorizon int
	// ForecastMinConfidence is the hard floor under the forecast's
	// profile-evidence confidence: predictions below it never raise a
	// trigger. 0 leaves the gating entirely to the confidence-aware
	// forecast rule bases.
	ForecastMinConfidence float64
	// ForecastRampFraction is the live-ramp gate of the proactive scan
	// (see controller.ForecastConfig.RampFraction): a forecast trigger
	// fires only once measured load passes this fraction of the
	// overload threshold. 0 uses the controller default, negative
	// disables the gate.
	ForecastRampFraction float64
	// ArchiveDir, when set, backs the load archive with a disk-based
	// segmented store (internal/tsdb): every recorded sample is written
	// through, committed once per minute, and replayed on the next run
	// from the same directory — the recovered day profiles are
	// byte-identical to the ones the previous run built. Empty keeps
	// the archive purely in memory.
	ArchiveDir string
	// RulesDir, when set, is loaded as a versioned rule-base directory
	// (the internal/rules layout, <name>@v<version>.rules): the highest
	// version of each base is validated, compiled and hot-swapped into
	// the controller before minute 0 — the file-driven equivalent of an
	// activated rulePut push.
	RulesDir string
	// ShadowRulesDir, when set, is loaded the same way and installed as
	// the controller's shadow overlay: every live trigger is also
	// decided under the candidate rule set and the decisions diffed —
	// never executed — surfacing in the autoglobe_rules_shadow_*
	// metrics and the decision tracer. The run itself is byte-identical
	// to one without the shadow.
	ShadowRulesDir string
	// ShadowLabel names the candidate overlay in metrics and traces
	// (default "candidate").
	ShadowLabel string
	// Reservations, when set, is forwarded to the controller so server
	// selection avoids hosts reserved for mission-critical tasks.
	Reservations controller.Reserver
	// WrapExecutor, when set, decorates the controller's executor —
	// e.g. registry.NewMirror keeps a ServiceGlobe federation's
	// service-IP bindings in sync with every controller action.
	WrapExecutor func(dep *service.Deployment, exec controller.Executor) (controller.Executor, error)
	// HostEvents schedules pool changes during the run — the blade
	// environments the paper targets scale "by varying the number of
	// blades on the fly". Removing a host abruptly kills its instances;
	// the heartbeat detector notices and the controller restarts them
	// elsewhere.
	HostEvents []HostEvent
	// Distributed, when set, runs the simulation over the real control
	// plane: heartbeats and actions travel as wire messages through
	// per-host agents instead of in-process calls. With a fault-free
	// transport the run is byte-identical to the in-process one; with
	// injected faults it exercises retries, compensation and dead-host
	// demotion. See DistributedConfig.
	Distributed *DistributedConfig
	// Obs, when set, instruments every component of the run: the monitor
	// (watch transitions), the controller (decisions, inference latency),
	// the liveness detector (death/recovery), and — in distributed mode —
	// the coordinator and dispatcher. Observation never feeds back into
	// the run: an instrumented simulation is byte-identical to an
	// uninstrumented one.
	Obs *obs.Registry
	// Tracer, when set, records one trace per control-loop iteration
	// (trigger → decision with rule provenance → dispatches → outcome).
	Tracer *obs.Tracer
}

// HostEvent is one scheduled change to the host pool.
type HostEvent struct {
	// Minute is when the event takes effect.
	Minute int
	// Add pools a new host (nil for removals).
	Add *cluster.Host
	// Remove unpools the named host (empty for additions).
	Remove string
}

// PaperConfig returns the configuration of the paper's simulation
// studies for a scenario and user multiplier.
func PaperConfig(m service.Mobility, multiplier float64) Config {
	return Config{
		Mobility:           m,
		Multiplier:         multiplier,
		Hours:              80,
		Seed:               1,
		Monitor:            monitor.PaperParams(),
		Controller:         controller.Config{},
		Cost:               workload.DefaultCostModel(),
		FluctuationPerHour: 0.10,
		LoginAffinity:      0.7,
		PeakActivity:       workload.DefaultPeakActivity,
		JitterAmplitude:    0.03,
	}
}

func (c Config) validate() error {
	switch {
	case c.Multiplier <= 0:
		return fmt.Errorf("simulator: multiplier %g must be positive", c.Multiplier)
	case c.Hours <= 0:
		return fmt.Errorf("simulator: hours %d must be positive", c.Hours)
	case c.FluctuationPerHour < 0 || c.FluctuationPerHour > 1:
		return fmt.Errorf("simulator: fluctuation %g outside [0, 1]", c.FluctuationPerHour)
	}
	if c.Distributed != nil && c.Distributed.Transport == nil {
		return fmt.Errorf("simulator: distributed mode needs a transport")
	}
	return c.Monitor.Validate()
}

// Simulator runs one configured scenario.
type Simulator struct {
	cfg  Config
	dep  *service.Deployment
	gen  *workload.Generator
	arch *archive.Archive
	lms  *monitor.System
	ctl  *controller.Controller
	rng  *rand.Rand

	registered map[string]bool // LMS-registered entities
	demand     map[string]float64
	actual     map[string]float64
	predictor  *forecast.Predictor
	liveness   *monitor.Liveness
	crashed    map[string]crashInfo // by instance ID, until remedied
	res        *Result
	start      int // first minute of Run: 0, or past a reopened archive's history

	// Distributed mode only: the control plane, the hosts demoted after
	// confirmed death (kept for re-pooling on recovery), the chaos
	// injector, and the bookkeeping the invariant checker needs to tell
	// legitimate model/agent divergence (simulated crashes never reach
	// the agent; a dead host's agent keeps its orphaned processes) from
	// a genuine double-executed or lost action.
	plane       *agent.Plane
	lostHosts   map[string]cluster.Host
	chaos       Injector
	everDemoted map[string]bool // hosts ever demoted or force-removed
	everCrashed map[string]bool // instance IDs killed in-model (never via dispatch)
}

// crashInfo remembers what a crashed instance looked like so the
// restarted instance can take over its sessions.
type crashInfo struct {
	service  string
	host     string
	users    float64
	priority int
}

// New builds a simulator with the paper's landscape for the configured
// scenario.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dep, err := service.BuildPaperDeployment(cluster.Paper(), cfg.Mobility, cfg.Multiplier)
	if err != nil {
		return nil, err
	}
	return newWithDeployment(cfg, dep)
}

// NewCustom builds a simulator over a caller-provided deployment and
// workload generator, for landscapes other than the paper's.
func NewCustom(cfg Config, dep *service.Deployment, gen *workload.Generator) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s, err := newWithDeployment(cfg, dep)
	if err != nil {
		return nil, err
	}
	s.gen = gen
	return s, nil
}

func newWithDeployment(cfg Config, dep *service.Deployment) (*Simulator, error) {
	var arch *archive.Archive
	if cfg.ArchiveDir != "" {
		// NoSync: the simulated crash model abandons the process, it
		// does not cut power — buffered OS writes survive that, and the
		// crash-point sweeps in internal/tsdb cover torn tails.
		var err error
		arch, err = archive.NewBacked(cfg.ArchiveDir, 0, tsdb.Options{NoSync: true})
		if err != nil {
			return nil, err
		}
		arch.Instrument(cfg.Obs)
	} else {
		arch = archive.New(0)
	}
	// A reopened backed archive carries history; the store's append
	// rule is monotone per entity, so the run must resume its clock
	// past the restored high-water mark rather than replay minute 0.
	start := 0
	if last, ok := arch.LastMinute(); ok {
		start = last + 1
	}
	lms, err := monitor.NewSystem(cfg.Monitor, arch)
	if err != nil {
		return nil, err
	}
	policy := controller.StickyUsers
	if cfg.Mobility == service.FullMobility {
		policy = controller.RebalanceUsers
	}
	if cfg.Reservations != nil {
		cfg.Controller.Reservations = cfg.Reservations
	}
	var predictor *forecast.Predictor
	if cfg.ForecastHorizon > 0 {
		predictor = forecast.New(arch)
		cfg.Controller.Forecast = &controller.ForecastConfig{
			Predictor:     predictor,
			Horizon:       cfg.ForecastHorizon,
			Threshold:     cfg.Monitor.OverloadThreshold,
			MinConfidence: cfg.ForecastMinConfidence,
			RampFraction:  cfg.ForecastRampFraction,
			Watching:      lms.Watching,
		}
	}
	var exec controller.Executor = controller.NewDeploymentExecutor(dep, policy)
	if cfg.WrapExecutor != nil {
		var err error
		exec, err = cfg.WrapExecutor(dep, exec)
		if err != nil {
			return nil, err
		}
	}
	s := &Simulator{
		cfg:        cfg,
		dep:        dep,
		gen:        workload.PaperGenerator(cfg.Multiplier, cfg.Seed),
		arch:       arch,
		start:      start,
		lms:        lms,
		rng:        rand.New(rand.NewSource(int64(cfg.Seed) + 17)),
		registered: make(map[string]bool),
		demand:     make(map[string]float64),
		actual:     make(map[string]float64),
		res:        newResult(cfg, dep.Cluster().Names()),
	}
	// The dispatch layer wraps outermost (after any WrapExecutor
	// decoration): hosts must acknowledge before the model — and any
	// federation mirror — changes.
	if cfg.Distributed != nil {
		if err := s.buildPlane(cfg.Distributed, lms); err != nil {
			return nil, err
		}
		exec = s.plane.Executor(exec)
	}
	ctl, err := controller.New(cfg.Controller, dep, arch, exec)
	if err != nil {
		return nil, err
	}
	if cfg.RulesDir != "" {
		if err := loadRuleDir(ctl, cfg.RulesDir); err != nil {
			return nil, err
		}
	}
	if cfg.ShadowRulesDir != "" {
		action, selection, err := shadowOverlay(cfg.ShadowRulesDir)
		if err != nil {
			return nil, err
		}
		label := cfg.ShadowLabel
		if label == "" {
			label = "candidate"
		}
		ctl.Shadow(label, action, selection)
	}
	s.ctl = ctl
	s.predictor = predictor
	timeout := cfg.HeartbeatTimeout
	if timeout == 0 {
		timeout = 2
	}
	s.liveness = monitor.NewLiveness(timeout)
	s.crashed = make(map[string]crashInfo)

	// Observability is attach-only: nil registry/tracer arguments no-op,
	// and nothing below reads a metric back into the control loop.
	lms.Instrument(cfg.Obs)
	s.liveness.Instrument(cfg.Obs)
	ctl.Instrument(cfg.Obs)
	ctl.Trace(cfg.Tracer)
	if s.plane != nil {
		s.plane.Instrument(cfg.Obs)
		s.plane.Trace(cfg.Tracer)
	}
	return s, nil
}

// Deployment exposes the simulated allocation (for the console and
// examples).
func (s *Simulator) Deployment() *service.Deployment { return s.dep }

// Controller exposes the controller (for the console).
func (s *Simulator) Controller() *controller.Controller { return s.ctl }

// Archive exposes the load archive.
func (s *Simulator) Archive() *archive.Archive { return s.arch }

// Generator exposes the workload generator, e.g. to layer bursts onto a
// scenario before running it.
func (s *Simulator) Generator() *workload.Generator { return s.gen }

// Close releases the simulator's disk resources: on an archive-backed
// run it commits buffered samples and closes the store (abandoning a
// simulator without Close models a coordinator crash — everything
// through the last completed minute is still recovered). A no-op for
// in-memory runs.
func (s *Simulator) Close() error { return s.arch.Close() }

// StartMinute returns the first minute Run will simulate: 0 for a
// fresh archive, the minute after the restored high-water mark for a
// reopened one.
func (s *Simulator) StartMinute() int { return s.start }

// Run simulates the configured number of hours and returns the result.
func (s *Simulator) Run() (*Result, error) {
	minutes := s.cfg.Hours * 60
	for m := s.start; m < s.start+minutes; m++ {
		if err := s.Step(m); err != nil {
			return nil, err
		}
	}
	s.res.Actions = s.ctl.Events()
	return s.res, nil
}

// Step advances the simulation by one minute.
func (s *Simulator) Step(minute int) error {
	if s.chaos != nil {
		// Chaos fires at the minute boundary, before any heartbeat or
		// dispatch of the minute: a coordinator crash lands between
		// control-loop iterations, never mid-transaction, which is the
		// crash model the journal's recovery protocol covers (mid-record
		// crashes are swept separately by the crash-point tests).
		// The chaos plan is laid out over the run's own minutes, so a
		// resumed run applies it relative to its start.
		if err := s.chaos.Apply(minute - s.start); err != nil {
			return err
		}
	}
	if err := s.applyHostEvents(minute); err != nil {
		return err
	}
	s.computeDemand(minute)
	s.recordMetrics(minute)
	triggers, err := s.observe(minute)
	if err != nil {
		return err
	}
	if !s.cfg.DisableController {
		for _, tr := range triggers {
			if _, err := s.ctl.HandleTrigger(*tr); err != nil {
				return err
			}
		}
		// The proactive forecast scan runs after the minute's measured
		// triggers: a confirmed situation (and the protection mode its
		// remedy raised) outranks a prediction of the same thing.
		for _, tr := range s.ctl.Proactive(minute) {
			s.res.TriggerCount[tr.Kind]++
			s.res.ProactiveTriggers++
			if _, err := s.ctl.HandleTrigger(tr); err != nil {
				return err
			}
		}
	}
	if s.plane != nil {
		// The minute's trigger slice is drained; hand its backing array
		// back to the coordinator so the next minute reuses it.
		s.plane.Coordinator().RecycleTriggers(triggers)
	}
	s.fluctuate(minute)
	if err := s.injectFailures(minute); err != nil {
		return err
	}
	if err := s.selfHeal(minute); err != nil {
		return err
	}
	// On a backed archive, close the minute: one batched segment write
	// makes everything recorded this minute durable, and once per hour
	// history past the retention window rolls into coarser tiers. A
	// no-op for the in-memory archive.
	return s.arch.Maintain(minute)
}

// applyHostEvents executes scheduled pool changes. A removed host takes
// its instances down with it; their sessions are remembered so the
// self-healing path restores them elsewhere.
func (s *Simulator) applyHostEvents(minute int) error {
	for _, ev := range s.cfg.HostEvents {
		if ev.Minute != minute {
			continue
		}
		switch {
		case ev.Add != nil:
			if err := s.dep.Cluster().Add(*ev.Add); err != nil {
				return err
			}
			s.res.HostLoad[ev.Add.Name] = make([]float64, s.res.Minutes)
			s.res.Hosts = append(s.res.Hosts, ev.Add.Name)
			if s.plane != nil {
				// A hot-plugged blade gets an agent; a re-added blade
				// still has one listening.
				if _, ok := s.plane.Agent(ev.Add.Name); !ok {
					if err := s.plane.AttachHost(ev.Add.Name); err != nil {
						return err
					}
				}
			}
		case ev.Remove != "":
			if s.everDemoted != nil {
				s.everDemoted[ev.Remove] = true // its agent keeps the orphans
			}
			for _, inst := range s.dep.InstancesOn(ev.Remove) {
				if s.everCrashed != nil {
					s.everCrashed[inst.ID] = true
				}
				s.crashed[inst.ID] = crashInfo{
					service: inst.Service, host: inst.Host,
					users: inst.Users, priority: inst.Priority,
				}
				if err := s.dep.Stop(inst.ID, true); err != nil {
					return err
				}
			}
			if err := s.dep.Cluster().Remove(ev.Remove); err != nil {
				return err
			}
			key := archive.HostEntity(ev.Remove)
			s.lms.Deregister(key)
			delete(s.registered, key)
			if s.plane != nil {
				// Orderly pool removal: the host is neither probed nor
				// ever reported dead.
				s.plane.Coordinator().Release(ev.Remove)
			}
		}
	}
	return nil
}

// computeDemand fills s.demand (requested CPU in performance-index
// units, per instance) and s.actual (granted CPU after capacity sharing)
// for the given minute.
func (s *Simulator) computeDemand(minute int) {
	clear(s.demand)
	clear(s.actual)
	cat := s.dep.Catalog()

	// Application-server and batch demand from active users; aggregate
	// per subsystem for the downstream database and central instance.
	// The database load scales with the request weight (a BW batch job
	// hits its database far harder than an FI dialog step); the central
	// instance only does lock bookkeeping, so its load scales with the
	// plain request volume.
	subDB := make(map[string]float64)
	subCI := make(map[string]float64)
	jitter := workload.Jitter{Seed: s.cfg.Seed, Amplitude: s.cfg.JitterAmplitude}
	for _, inst := range s.dep.Instances() {
		svc, _ := cat.Get(inst.Service)
		switch svc.Type {
		case service.TypeInteractive, service.TypeBatch:
			frac := s.gen.ActiveFraction(inst.Service, minute)
			active := inst.Users * frac * jitter.Factor(inst.ID, minute)
			units := active / float64(svc.UsersPerUnit)
			s.demand[inst.ID] = units + svc.BaseLoad
			subDB[svc.Subsystem] += units * svc.RequestWeight
			subCI[svc.Subsystem] += units
		}
	}
	// Databases and central instances mirror their subsystem's request
	// stream. A scaled-out database splits the demand across instances.
	for _, svc := range cat.All() {
		var load float64
		switch svc.Type {
		case service.TypeDatabase:
			load = subDB[svc.Subsystem] * s.cfg.Cost.DBShare
		case service.TypeCentralInstance:
			load = subCI[svc.Subsystem] * s.cfg.Cost.CIShare
		default:
			continue
		}
		insts := s.dep.InstancesOf(svc.Name)
		if len(insts) == 0 {
			continue
		}
		per := load / float64(len(insts))
		for _, inst := range insts {
			s.demand[inst.ID] = per + svc.BaseLoad
		}
	}

	// Capacity sharing per host: when raw demand exceeds the host's
	// capacity, instances receive CPU proportionally to their demand,
	// weighted by scheduling priority.
	for _, hostName := range s.dep.Cluster().Names() {
		h, _ := s.dep.Cluster().Host(hostName)
		insts := s.dep.InstancesOn(hostName)
		var weighted, raw float64
		for _, inst := range insts {
			w := priorityWeight(inst.Priority)
			weighted += s.demand[inst.ID] * w
			raw += s.demand[inst.ID]
		}
		if raw <= h.PerformanceIndex || weighted == 0 {
			for _, inst := range insts {
				s.actual[inst.ID] = s.demand[inst.ID]
			}
			continue
		}
		for _, inst := range insts {
			w := priorityWeight(inst.Priority)
			s.actual[inst.ID] = s.demand[inst.ID] * w / weighted * h.PerformanceIndex
		}
	}
}

// priorityWeight converts a scheduling priority into a CPU share weight.
func priorityWeight(p int) float64 { return math.Max(0.25, 1+0.25*float64(p)) }

// hostRaw returns the host's raw demand (may exceed 1) and memory load.
func (s *Simulator) hostRaw(hostName string) (cpu, mem float64) {
	h, _ := s.dep.Cluster().Host(hostName)
	var units float64
	memUsed := 0
	for _, inst := range s.dep.InstancesOn(hostName) {
		units += s.demand[inst.ID]
		svc, _ := s.dep.Catalog().Get(inst.Service)
		memUsed += svc.MemoryMBPerInstance
	}
	return units / h.PerformanceIndex, float64(memUsed) / float64(h.MemoryMB)
}

// instanceLoad is the fraction of its host the instance demands.
func (s *Simulator) instanceLoad(inst *service.Instance) float64 {
	h, _ := s.dep.Cluster().Host(inst.Host)
	return math.Min(1, s.demand[inst.ID]/h.PerformanceIndex)
}

// observe feeds the monitoring pipeline: every host and every service is
// monitored; instances are recorded in the archive for the controller's
// instanceLoad variable.
func (s *Simulator) observe(minute int) ([]*monitor.Trigger, error) {
	if s.plane != nil {
		return s.observeDistributed(minute)
	}
	var triggers []*monitor.Trigger

	for _, hostName := range s.dep.Cluster().Names() {
		key := archive.HostEntity(hostName)
		if !s.registered[key] {
			h, _ := s.dep.Cluster().Host(hostName)
			s.lms.Register(key, monitor.Server, h.PerformanceIndex)
			s.registered[key] = true
		}
		raw, mem := s.hostRaw(hostName)
		tr, err := s.lms.Observe(key, minute, math.Min(1, raw), mem)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			// An idle host with nothing running on it is the normal
			// resting state of a pooled blade, not an exceptional
			// situation — there is no instance to consolidate away.
			if tr.Kind == monitor.ServerIdle && s.dep.CountOn(hostName) == 0 {
				continue
			}
			tr.Entity = hostName
			triggers = append(triggers, tr)
			s.res.TriggerCount[tr.Kind]++
		}
	}

	for _, svcName := range s.dep.Catalog().Names() {
		insts := s.dep.InstancesOf(svcName)
		if len(insts) == 0 {
			continue
		}
		var sum float64
		for _, inst := range insts {
			il := s.instanceLoad(inst)
			sum += il
			if err := s.arch.Record(archive.InstanceEntity(inst.ID),
				archive.Sample{Minute: minute, CPU: il}); err != nil {
				return nil, err
			}
		}
		key := archive.ServiceEntity(svcName)
		if !s.registered[key] {
			s.lms.Register(key, monitor.Service, 1)
			s.registered[key] = true
		}
		tr, err := s.lms.Observe(key, minute, sum/float64(len(insts)), 0)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Entity = svcName
			triggers = append(triggers, tr)
			s.res.TriggerCount[tr.Kind]++
		}
	}
	return triggers, nil
}

// fluctuate models user session churn. Two flows move assigned users
// toward the least-loaded server (as the paper describes): a steady
// trickle of re-logins (FluctuationPerHour) and the login wave when
// activity rises (the 8 o'clock rush), of which only the non-affine
// share (1 − LoginAffinity) picks a new home.
func (s *Simulator) fluctuate(minute int) {
	for _, svc := range s.dep.Catalog().All() {
		if svc.Type != service.TypeInteractive && svc.Type != service.TypeBatch {
			continue
		}
		insts := s.dep.InstancesOf(svc.Name)
		if len(insts) < 2 {
			continue
		}
		rate := s.cfg.FluctuationPerHour / 60
		rise := s.gen.ActiveFraction(svc.Name, minute) - s.gen.ActiveFraction(svc.Name, minute-1)
		if rise > 0 {
			rate += rise * (1 - s.cfg.LoginAffinity)
		}
		if rate <= 0 {
			continue
		}
		if rate > 1 {
			rate = 1
		}
		var pool float64
		least := insts[0]
		leastLoad := math.Inf(1)
		for _, inst := range insts {
			moved := inst.Users * rate
			inst.Users -= moved
			pool += moved
			// "Reconnect to the currently least-loaded server": compare
			// host loads, not instance shares.
			if hl, _ := s.hostRaw(inst.Host); hl < leastLoad {
				least, leastLoad = inst, hl
			}
		}
		least.Users += pool
	}
}

// injectFailures crashes instances at the configured rate. The crash
// only removes the instance; detection happens through missed
// heartbeats and remediation through the controller (selfHeal).
func (s *Simulator) injectFailures(minute int) error {
	if s.cfg.FailuresPerDay == 0 {
		return nil
	}
	if s.rng.Float64() >= s.cfg.FailuresPerDay/float64(workload.MinutesPerDay) {
		return nil
	}
	insts := s.dep.Instances()
	if len(insts) == 0 {
		return nil
	}
	victim := insts[s.rng.Intn(len(insts))]
	if s.everCrashed != nil {
		s.everCrashed[victim.ID] = true // the agent never hears about it
	}
	s.crashed[victim.ID] = crashInfo{
		service: victim.Service, host: victim.Host,
		users: victim.Users, priority: victim.Priority,
	}
	if err := s.dep.Stop(victim.ID, true); err != nil {
		return err
	}
	return nil
}

// selfHeal beats for every live instance, detects instances that went
// silent, and lets the controller restart them, restoring the crashed
// instance's user sessions onto the replacement.
func (s *Simulator) selfHeal(minute int) error {
	for _, inst := range s.dep.Instances() {
		s.liveness.Beat(inst.ID, minute)
	}
	for _, id := range s.liveness.Dead(minute) {
		info, ok := s.crashed[id]
		if !ok {
			continue // orderly stop by a controller action, not a crash
		}
		delete(s.crashed, id)
		d, err := s.ctl.HandleFailure(info.service, info.host, minute)
		if err != nil {
			return err
		}
		if d == nil {
			s.res.FailedRestarts++
			continue
		}
		// The replacement takes over the crashed instance's sessions
		// (in full mobility the executor may already have rebalanced,
		// so the orphaned sessions are added rather than assigned).
		for _, inst := range s.dep.InstancesOf(info.service) {
			if inst.Host == d.TargetHost {
				inst.Users += info.users
				inst.Priority = info.priority
				break
			}
		}
		s.res.Restarts++
	}
	return nil
}

// recordMetrics appends this minute's loads to the result series.
func (s *Simulator) recordMetrics(minute int) {
	var sum float64
	hostOverloaded := make(map[string]bool)
	for _, hostName := range s.dep.Cluster().Names() {
		raw, _ := s.hostRaw(hostName)
		clamped := math.Min(1, raw)
		s.res.HostLoad[hostName] = append(s.res.HostLoad[hostName], clamped)
		sum += clamped
		hostOverloaded[hostName] = raw > OverloadLevel
		if raw > OverloadLevel {
			s.res.OverloadMinutes[hostName]++
			s.res.streak[hostName]++
			if s.res.streak[hostName] > s.res.MaxStreak[hostName] {
				s.res.MaxStreak[hostName] = s.res.streak[hostName]
			}
		} else {
			s.res.streak[hostName] = 0
		}
	}
	s.res.AvgLoad = append(s.res.AvgLoad, sum/float64(s.dep.Cluster().Len()))
	s.res.Minutes++

	// User-experienced degradation per service: active user-minutes on
	// overloaded hosts, the quantity SLAs are written against.
	for _, inst := range s.dep.Instances() {
		svc, _ := s.dep.Catalog().Get(inst.Service)
		if svc.Type != service.TypeInteractive && svc.Type != service.TypeBatch {
			continue
		}
		active := inst.Users * s.gen.ActiveFraction(inst.Service, minute)
		if active == 0 {
			continue
		}
		s.res.UserMinutes[inst.Service] += active
		if hostOverloaded[inst.Host] {
			s.res.DegradedUserMinutes[inst.Service] += active
		}
	}

	for _, svcName := range s.cfg.RecordServices {
		for _, inst := range s.dep.InstancesOf(svcName) {
			key := svcName + "@" + inst.Host
			s.res.ServiceHostSeries[key] = append(s.res.ServiceHostSeries[key],
				SeriesPoint{Minute: minute, Load: s.instanceLoad(inst)})
		}
	}
}
