package simulator

import (
	"math"
	"testing"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
)

// TestHotplugRemoveAndAdd: pulling a blade mid-run kills its instances;
// the heartbeat detector notices and the controller restarts them
// elsewhere with their sessions intact. A freshly inserted blade joins
// the pool and becomes a valid action target.
func TestHotplugRemoveAndAdd(t *testing.T) {
	cfg := PaperConfig(service.FullMobility, 1.0)
	cfg.Hours = 12
	cfg.HostEvents = []HostEvent{
		{Minute: 300, Remove: "Blade12"}, // one of the LES blades
		{Minute: 400, Add: &cluster.Host{
			Name: "Blade20", Category: "FSC-BX600", PerformanceIndex: 2, CPUs: 2,
			ClockMHz: 933, CacheKB: 512, MemoryMB: 4096, SwapMB: 4096, TempMB: 51200,
		}},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lesBefore := sim.Deployment().UsersOf("LES")
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := sim.Deployment().Cluster().Host("Blade12"); ok {
		t.Error("Blade12 still pooled after removal")
	}
	if _, ok := sim.Deployment().Cluster().Host("Blade20"); !ok {
		t.Error("Blade20 not pooled after addition")
	}
	if got := sim.Deployment().CountOn("Blade12"); got != 0 {
		t.Errorf("%d instances still on the removed blade", got)
	}
	if res.Restarts == 0 {
		t.Error("evacuated instances were not restarted")
	}
	if got := sim.Deployment().UsersOf("LES"); math.Abs(got-lesBefore) > 1e-6 {
		t.Errorf("LES users = %g after hotplug, want %g (sessions restored)", got, lesBefore)
	}
	if err := sim.Deployment().Validate(); err != nil {
		t.Errorf("deployment invalid after hotplug: %v", err)
	}
	// The new blade's series aligns with the rest.
	if got := len(res.HostLoad["Blade20"]); got != res.Minutes {
		t.Errorf("Blade20 series has %d points, want %d", got, res.Minutes)
	}
}
