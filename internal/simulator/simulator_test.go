package simulator

import (
	"math"
	"testing"

	"autoglobe/internal/service"
)

// run executes a scenario for the given hours at the given multiplier.
func run(t *testing.T, m service.Mobility, mult float64, hours int, tweak func(*Config)) *Result {
	t.Helper()
	cfg := PaperConfig(m, mult)
	cfg.Hours = hours
	if tweak != nil {
		tweak(&cfg)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Multiplier: 0, Hours: 1},
		{Multiplier: 1, Hours: 0},
		{Multiplier: 1, Hours: 1, FluctuationPerHour: 2},
	}
	for i, cfg := range bad {
		cfg.Monitor = PaperConfig(service.Static, 1).Monitor
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestStaticBaselineHealthy: at the baseline population the statically
// allocated installation runs inside the 60–80 % band with essentially
// no overload — the hardware is "scaled for peak load".
func TestStaticBaselineHealthy(t *testing.T) {
	res := run(t, service.Static, 1.0, 48, nil)
	if res.Overloaded(DefaultOverloadBudget, DefaultStreakBudget) {
		t.Errorf("static baseline overloaded: %s", res)
	}
	if len(res.ExecutedActions()) != 0 {
		t.Errorf("static scenario executed %d actions; all services are static", len(res.ExecutedActions()))
	}
	// Peak utilization of the busiest blade is in (or near) the paper's
	// 60–80 % main-activity band.
	var peak float64
	for _, s := range res.Summaries() {
		if s.Max > peak {
			peak = s.Max
		}
	}
	if peak < 0.60 || peak > 0.85 {
		t.Errorf("busiest host peak = %.2f, want main-activity band ~0.6–0.8", peak)
	}
}

// TestStaticOverloadsWithMoreUsers: 10 % more users overload the static
// installation for long stretches (Figure 12's periodic plateaus).
func TestStaticOverloadsWithMoreUsers(t *testing.T) {
	res := run(t, service.Static, 1.10, 48, nil)
	if !res.Overloaded(DefaultOverloadBudget, DefaultStreakBudget) {
		t.Errorf("static at 110%% not overloaded: %s", res)
	}
	_, worst := res.WorstOverloadPerDay()
	if worst < 100 {
		t.Errorf("static at 110%%: worst host only %.0f overload min/day", worst)
	}
}

// TestControllerImprovesOverStatic reproduces the core qualitative claim
// of Figures 12–14: at +15 % users the constrained-mobility controller
// shortens overloads versus static, and full mobility practically
// eliminates them.
func TestControllerImprovesOverStatic(t *testing.T) {
	static := run(t, service.Static, 1.15, 80, nil)
	cm := run(t, service.ConstrainedMobility, 1.15, 80, nil)
	fm := run(t, service.FullMobility, 1.15, 80, nil)

	_, sW := static.WorstOverloadPerDay()
	_, cW := cm.WorstOverloadPerDay()
	_, fW := fm.WorstOverloadPerDay()
	if !(cW < sW) {
		t.Errorf("CM worst overload (%.0f/day) not below static (%.0f/day)", cW, sW)
	}
	if !(fW < sW/3) {
		t.Errorf("FM worst overload (%.0f/day) not far below static (%.0f/day)", fW, sW)
	}
	if static.TotalOverloadPerDay() < 5*fm.TotalOverloadPerDay() {
		t.Errorf("FM should cut total overload dramatically: static %.0f vs FM %.0f min/day",
			static.TotalOverloadPerDay(), fm.TotalOverloadPerDay())
	}
	if len(cm.ExecutedActions()) == 0 {
		t.Error("CM controller executed no actions at 115%")
	}
	if len(fm.ExecutedActions()) == 0 {
		t.Error("FM controller executed no actions at 115%")
	}
}

// TestCMOnlyUsesTable5Actions: in constrained mobility only scale-in and
// scale-out ever execute (Table 5).
func TestCMOnlyUsesTable5Actions(t *testing.T) {
	res := run(t, service.ConstrainedMobility, 1.20, 48, nil)
	for a := range res.ActionCounts() {
		if a != service.ActionScaleIn && a != service.ActionScaleOut {
			t.Errorf("CM executed %s; Table 5 allows only scale-in/scale-out", a)
		}
	}
}

// TestFMUsesRelocation: full mobility exercises the relocation actions
// (move / scale-up / scale-down) in addition to scaling (Figure 17).
func TestFMUsesRelocation(t *testing.T) {
	res := run(t, service.FullMobility, 1.30, 80, nil)
	counts := res.ActionCounts()
	reloc := counts[service.ActionMove] + counts[service.ActionScaleUp] + counts[service.ActionScaleDown]
	if reloc == 0 {
		t.Errorf("FM executed no relocation actions; counts = %v", counts)
	}
	if counts[service.ActionScaleOut] == 0 {
		t.Errorf("FM executed no scale-outs; counts = %v", counts)
	}
}

// TestInvariantsAfterLongRun: whatever the controller does, the
// deployment never violates a declared constraint, and no user is lost.
func TestInvariantsAfterLongRun(t *testing.T) {
	for _, m := range []service.Mobility{service.ConstrainedMobility, service.FullMobility} {
		cfg := PaperConfig(m, 1.30)
		cfg.Hours = 48
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]float64{}
		for _, svc := range sim.Deployment().Catalog().Names() {
			want[svc] = sim.Deployment().UsersOf(svc)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Deployment().Validate(); err != nil {
			t.Errorf("%v: deployment invalid after run: %v", m, err)
		}
		for svc, u := range want {
			got := sim.Deployment().UsersOf(svc)
			if math.Abs(got-u) > 1e-6*math.Max(1, u) {
				t.Errorf("%v: %s users changed from %g to %g", m, svc, u, got)
			}
		}
	}
}

// TestFailureInjectionSelfHealing: injected crashes are remedied with
// restarts and the landscape stays valid.
func TestFailureInjectionSelfHealing(t *testing.T) {
	res := run(t, service.FullMobility, 1.0, 48, func(c *Config) {
		c.FailuresPerDay = 48 // two crashes per simulated hour on average
	})
	if res.Restarts == 0 {
		t.Fatal("no self-healing restarts despite heavy failure injection")
	}
}

// TestFailureConservesUsers: crashed instances hand their sessions to
// the restarted replacement — no user is lost even under heavy failure
// injection.
func TestFailureConservesUsers(t *testing.T) {
	cfg := PaperConfig(service.FullMobility, 1.0)
	cfg.Hours = 36
	cfg.FailuresPerDay = 60
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, svc := range sim.Deployment().Catalog().Names() {
		want[svc] = sim.Deployment().UsersOf(svc)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("no restarts despite heavy failure injection")
	}
	lost := 0.0
	for svc, u := range want {
		lost += math.Abs(sim.Deployment().UsersOf(svc) - u)
	}
	// A failure whose restart could not happen (FailedRestarts) loses
	// its sessions legitimately; with a working landscape that should
	// not occur.
	if res.FailedRestarts == 0 && lost > 1e-6 {
		t.Errorf("users lost across failures: %.3f", lost)
	}
	if err := sim.Deployment().Validate(); err != nil {
		t.Errorf("deployment invalid after failures: %v", err)
	}
}

// TestRecordServices: requesting FI series yields FI@host curves, the
// data behind Figures 15–17.
func TestRecordServices(t *testing.T) {
	res := run(t, service.Static, 1.0, 24, func(c *Config) {
		c.RecordServices = []string{"FI"}
	})
	keys := res.SeriesKeys()
	if len(keys) != 3 {
		t.Fatalf("FI series keys = %v, want 3 (Blade3, Blade5, Blade11)", keys)
	}
	for _, k := range keys {
		pts := res.ServiceHostSeries[k]
		if len(pts) != 24*60 {
			t.Errorf("series %s has %d points, want %d", k, len(pts), 24*60)
		}
	}
}

// TestDeterminism: the same seed reproduces the identical run.
func TestDeterminism(t *testing.T) {
	a := run(t, service.FullMobility, 1.15, 24, nil)
	b := run(t, service.FullMobility, 1.15, 24, nil)
	if a.MeanLoad() != b.MeanLoad() {
		t.Errorf("same seed, different mean load: %g vs %g", a.MeanLoad(), b.MeanLoad())
	}
	if len(a.ExecutedActions()) != len(b.ExecutedActions()) {
		t.Errorf("same seed, different action counts: %d vs %d",
			len(a.ExecutedActions()), len(b.ExecutedActions()))
	}
	c := run(t, service.FullMobility, 1.15, 24, func(cfg *Config) { cfg.Seed = 99 })
	if a.MeanLoad() == c.MeanLoad() && len(a.ExecutedActions()) == len(c.ExecutedActions()) {
		t.Log("warning: different seeds produced identical runs (possible, but suspicious)")
	}
}

// TestDisableController: with the controller disabled, CM behaves like
// static (no actions), isolating the controller's contribution.
func TestDisableController(t *testing.T) {
	res := run(t, service.ConstrainedMobility, 1.15, 24, func(c *Config) {
		c.DisableController = true
	})
	if len(res.ExecutedActions()) != 0 {
		t.Errorf("disabled controller executed %d actions", len(res.ExecutedActions()))
	}
}

// TestDayNightLoadShape: the average load curve shows the diurnal
// pattern — busier during working hours than in the dead of night
// (before the BW batch window opens).
func TestDayNightLoadShape(t *testing.T) {
	res := run(t, service.Static, 1.0, 24, nil)
	// 10:00 (working peak) vs 07:00 (after batch, before work).
	if !(res.AvgLoad[10*60] > res.AvgLoad[7*60]) {
		t.Errorf("average load at 10:00 (%.2f) not above 07:00 (%.2f)",
			res.AvgLoad[10*60], res.AvgLoad[7*60])
	}
}

func TestResultAccessors(t *testing.T) {
	res := run(t, service.Static, 1.10, 24, nil)
	if got := res.Days(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Days = %g, want 1", got)
	}
	if s := res.String(); s == "" {
		t.Error("empty result string")
	}
	sums := res.Summaries()
	if len(sums) != 19 {
		t.Fatalf("summaries for %d hosts, want 19", len(sums))
	}
	for _, s := range sums {
		if s.Mean < 0 || s.Mean > 1 || s.Max < s.Mean {
			t.Errorf("implausible summary %+v", s)
		}
	}
	if res.MeanLoad() <= 0 || res.MeanLoad() >= 1 {
		t.Errorf("mean load = %g", res.MeanLoad())
	}
}
