package simulator

import (
	"fmt"
	"testing"

	"autoglobe/internal/wire"
)

// TestDistributedBinaryLoopbackByteIdentical extends the wire layer's
// correctness claim to the binary codec and the sharded ingest path:
// framing every envelope through the length-prefixed binary format and
// spreading heartbeat ingest over 1 or 16 shards changes nothing — the
// run stays byte-identical to the in-process simulation. The shard
// count is irrelevant by construction (the minute-boundary merge fixes
// the observation order), and this test is the proof.
func TestDistributedBinaryLoopbackByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			lb := wire.NewLoopback()
			defer lb.Close()
			lb.SetCodec(wire.CodecBinary)
			sim := declaredSim(t, func(c *Config) {
				tuneForActions(c)
				c.Distributed = &DistributedConfig{
					Transport:    lb,
					IngestShards: shards,
				}
			})
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, base, res, fmt.Sprintf("binary loopback (%d shards)", shards))
			if got := sim.Plane().Coordinator().Shards(); got != shards {
				t.Errorf("coordinator runs %d ingest shards, want %d", got, shards)
			}
			wantBeats := res.Minutes * len(res.Hosts)
			if got := sim.Plane().Coordinator().Heartbeats(); got != wantBeats {
				t.Errorf("coordinator ingested %d heartbeats, want %d", got, wantBeats)
			}
		})
	}
}

// TestDistributedJSONShardedByteIdentical crosses the other two axes:
// the JSON codec with a non-default shard count. Codec and shard count
// are independent knobs; neither may affect the decision stream.
func TestDistributedJSONShardedByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	lb := wire.NewLoopback()
	defer lb.Close() // JSON is the loopback default; no SetCodec
	res, err := declaredSim(t, func(c *Config) {
		tuneForActions(c)
		c.Distributed = &DistributedConfig{
			Transport:    lb,
			IngestShards: 4,
		}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "json loopback (4 shards)")
}

// TestDistributedHTTPBinaryByteIdentical repeats the identity over real
// sockets with the binary codec: the length-prefixed frames carry IEEE
// float64 bits verbatim, so the run survives the trip through net/http
// bit-exactly — no decimal round-trip is even involved.
func TestDistributedHTTPBinaryByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	tr := wire.NewHTTP()
	defer tr.Close()
	tr.Codec = wire.CodecBinary
	res, err := declaredSim(t, func(c *Config) {
		tuneForActions(c)
		c.Distributed = &DistributedConfig{Transport: tr}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "http binary")
}
