package simulator

import (
	"fmt"
	"testing"

	"autoglobe/internal/controller"
	"autoglobe/internal/spec"
	"autoglobe/internal/wire"
)

// declaredSim builds a simulator from the declarative test landscape,
// optionally adjusting the derived configuration (e.g. attaching a
// distributed control plane).
func declaredSim(t *testing.T, adjust func(*Config)) *Simulator {
	t.Helper()
	l, err := spec.ParseString(declaredLandscape)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := FromLandscapeConfig(l, adjust)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// renderEvents flattens the controller's event log into comparable
// lines. Floats use %v (the shortest representation that uniquely
// identifies the float64), so two logs compare equal only if every
// applicability and host score is bit-identical.
func renderEvents(events []controller.Event) []string {
	out := make([]string, 0, len(events))
	for _, e := range events {
		line := fmt.Sprintf("%d|%v|%s", e.Minute, e.Executed, e.Note)
		if d := e.Decision; d != nil {
			line += fmt.Sprintf("|%s %s inst=%s %s->%s a=%v h=%v",
				d.Action, d.Service, d.InstanceID, d.SourceHost, d.TargetHost,
				d.Applicability, d.HostScore)
		}
		out = append(out, line)
	}
	return out
}

// assertIdentical compares two runs down to the bit: the action log,
// the trigger tallies and every per-minute load sample must agree.
func assertIdentical(t *testing.T, want, got *Result, label string) {
	t.Helper()
	wantLog, gotLog := renderEvents(want.Actions), renderEvents(got.Actions)
	if len(wantLog) != len(gotLog) {
		t.Fatalf("%s: %d events, in-process %d\n got: %v\nwant: %v",
			label, len(gotLog), len(wantLog), gotLog, wantLog)
	}
	for i := range wantLog {
		if wantLog[i] != gotLog[i] {
			t.Fatalf("%s: event %d diverges\n got: %s\nwant: %s", label, i, gotLog[i], wantLog[i])
		}
	}
	if len(wantLog) == 0 {
		t.Fatalf("%s: runs agree but produced no controller events — the comparison is vacuous", label)
	}
	for kind, n := range want.TriggerCount {
		if got.TriggerCount[kind] != n {
			t.Errorf("%s: %s triggers = %d, in-process %d", label, kind, got.TriggerCount[kind], n)
		}
	}
	if len(got.AvgLoad) != len(want.AvgLoad) {
		t.Fatalf("%s: %d avg-load samples, in-process %d", label, len(got.AvgLoad), len(want.AvgLoad))
	}
	for i := range want.AvgLoad {
		if got.AvgLoad[i] != want.AvgLoad[i] {
			t.Fatalf("%s: avg load diverges at minute %d: %v vs %v",
				label, i, got.AvgLoad[i], want.AvgLoad[i])
		}
	}
	for _, h := range want.Hosts {
		wantSeries, gotSeries := want.HostLoad[h], got.HostLoad[h]
		if len(wantSeries) != len(gotSeries) {
			t.Fatalf("%s: host %s has %d samples, in-process %d", label, h, len(gotSeries), len(wantSeries))
		}
		for i := range wantSeries {
			if wantSeries[i] != gotSeries[i] {
				t.Fatalf("%s: host %s load diverges at minute %d: %v vs %v",
					label, h, i, gotSeries[i], wantSeries[i])
			}
		}
	}
}

// tuneForActions lowers the overload threshold so the declared day
// curve actually drives the controller: without confirmed triggers the
// byte-identity comparison would be vacuous. Applied identically to
// both runs of a comparison.
func tuneForActions(c *Config) {
	c.Monitor.OverloadThreshold = 0.55
	c.Monitor.OverloadWatch = 3
}

// TestDistributedLoopbackByteIdentical is the core correctness claim of
// the wire layer: routing every observation and every action through
// heartbeats, dispatched operations and agent acknowledgements changes
// nothing — the full monitor → fuzzy controller → action round trip
// produces a byte-identical run over the loopback transport.
func TestDistributedLoopbackByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	lb := wire.NewLoopback()
	defer lb.Close()
	sim := declaredSim(t, func(c *Config) {
		tuneForActions(c)
		c.Distributed = &DistributedConfig{Transport: lb}
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "loopback")
	if res.DemotedHosts != 0 || res.RepooledHosts != 0 {
		t.Errorf("fault-free run demoted %d and repooled %d hosts, want none",
			res.DemotedHosts, res.RepooledHosts)
	}
	// Every minute of the run crossed the wire.
	wantBeats := res.Minutes * len(res.Hosts)
	if got := sim.Plane().Coordinator().Heartbeats(); got != wantBeats {
		t.Errorf("coordinator ingested %d heartbeats, want %d", got, wantBeats)
	}
}

// TestDistributedHTTPByteIdentical repeats the identity over real
// sockets: JSON encodes float64 exactly, so the run survives the trip
// through net/http on localhost unchanged.
func TestDistributedHTTPByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	tr := wire.NewHTTP()
	defer tr.Close()
	res, err := declaredSim(t, func(c *Config) {
		tuneForActions(c)
		c.Distributed = &DistributedConfig{Transport: tr}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "http")
}

// TestDistributedPartitionDemotesAndRepools partitions a host mid-run:
// its heartbeats and probes vanish, the hysteresis detector confirms it
// dead, the host is demoted and its instance restarted elsewhere; when
// the partition heals, answered probes re-pool the empty host.
func TestDistributedPartitionDemotesAndRepools(t *testing.T) {
	lb := wire.NewLoopback()
	defer lb.Close()
	sim := declaredSim(t, func(c *Config) {
		c.Distributed = &DistributedConfig{
			Transport:               lb,
			HeartbeatTimeoutMinutes: 1,
			DeadAfter:               2,
			AliveAfter:              2,
		}
	})

	step := func(m int) {
		t.Helper()
		if err := sim.Step(m); err != nil {
			t.Fatalf("minute %d: %v", m, err)
		}
	}
	for m := 0; m < 10; m++ {
		step(m)
	}

	lb.Isolate("b1")
	minute, demotedAt := 10, -1
	for ; minute < 30 && demotedAt < 0; minute++ {
		step(minute)
		if sim.res.DemotedHosts > 0 {
			demotedAt = minute
		}
	}
	if demotedAt < 0 {
		t.Fatal("partitioned host was never demoted")
	}
	if _, ok := sim.Deployment().Cluster().Host("b1"); ok {
		t.Fatal("demoted host still pooled")
	}
	// The lost app instance was restarted on a surviving host.
	insts := sim.Deployment().InstancesOf("app")
	if len(insts) != 2 {
		t.Fatalf("app has %d instances after demotion, want 2 (one restarted)", len(insts))
	}
	for _, inst := range insts {
		if inst.Host == "b1" {
			t.Fatalf("instance %s still placed on the dead host", inst.ID)
		}
	}
	if sim.res.Restarts == 0 {
		t.Error("restart not counted")
	}

	lb.Heal("b1")
	for repooledAt := -1; minute < 60 && repooledAt < 0; minute++ {
		step(minute)
		if sim.res.RepooledHosts > 0 {
			repooledAt = minute
		}
	}
	if sim.res.RepooledHosts != 1 {
		t.Fatal("healed host was never re-pooled")
	}
	h, ok := sim.Deployment().Cluster().Host("b1")
	if !ok {
		t.Fatal("re-pooled host missing from the cluster")
	}
	if h.Name != "b1" || sim.Deployment().CountOn("b1") != 0 {
		t.Fatalf("re-pooled host %+v should rejoin empty", h)
	}
	// The re-pooled host's load series is padded for its absence, so
	// the result stays rectangular enough for the summaries.
	step(minute)
	if got, want := len(sim.res.HostLoad["b1"]), sim.res.Minutes; got != want {
		t.Fatalf("b1 load series has %d samples after %d minutes", got, want)
	}
}
