package simulator

import (
	"testing"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
	"autoglobe/internal/workload"
)

// burstRun drives a minimal, noise-free landscape — one busy blade at a
// steady 65 % and one empty spare — with an optional burst, and returns
// the run result. Baseline behaviour is exactly zero actions, so any
// reaction is attributable to the burst.
func burstRun(t *testing.T, burst *workload.Burst) *Result {
	t.Helper()
	cl := cluster.MustNew(
		cluster.Host{Name: "h1", Category: "t", PerformanceIndex: 1, CPUs: 1,
			ClockMHz: 1000, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
		cluster.Host{Name: "h2", Category: "t", PerformanceIndex: 1, CPUs: 1,
			ClockMHz: 1000, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
	)
	cat := service.MustCatalog(&service.Service{
		Name: "app", Type: service.TypeInteractive, MinInstances: 1,
		Allowed: map[service.Action]bool{
			service.ActionScaleIn: true, service.ActionScaleOut: true, service.ActionMove: true,
		},
		MemoryMBPerInstance: 1024, BaseLoad: 0.05, UsersPerUnit: 150, RequestWeight: 1,
	})
	dep := service.NewDeployment(cl, cat)
	inst, err := dep.Start("app", "h1")
	if err != nil {
		t.Fatal(err)
	}
	inst.Users = 150 // 150 × 0.6 / 150 + 0.05 = 65 % steady load

	cfg := PaperConfig(service.ConstrainedMobility, 1.0)
	cfg.Hours = 24
	cfg.JitterAmplitude = 0
	cfg.FluctuationPerHour = 0
	gen := workload.MustGenerator(workload.Jitter{},
		workload.Source{Service: "app", Users: 150, Profile: workload.Flat(0.6)})
	if burst != nil {
		gen.AddBurst("app", *burst)
	}
	sim, err := NewCustom(cfg, dep, gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWatchTimeFiltersShortBurst reproduces the load monitoring system's
// purpose end to end: "in real systems short load peaks are quite
// common. Immediate reaction on these peaks could lead to an unsettled
// and instable system." A 3-minute spike to 77 % — whose 10-minute
// watch-window average stays below the 70 % threshold — must not change
// the controller's behaviour at all, while a 30-minute surge of the
// same height must draw a scale-out.
func TestWatchTimeFiltersShortBurst(t *testing.T) {
	baseline := burstRun(t, nil)
	if got := len(baseline.ExecutedActions()); got != 0 {
		t.Fatalf("baseline executed %d actions, want 0", got)
	}

	short := burstRun(t, &workload.Burst{Start: 600, Length: 3, Factor: 1.2})
	if got := len(short.ExecutedActions()); got != 0 {
		t.Errorf("3-minute spike drew %d actions; the watchTime should filter it", got)
	}

	long := burstRun(t, &workload.Burst{Start: 600, Length: 30, Factor: 1.2})
	acts := long.ExecutedActions()
	if len(acts) == 0 {
		t.Fatal("30-minute surge drew no reaction")
	}
	d := acts[0].Decision
	if d.Action != service.ActionScaleOut && d.Action != service.ActionMove {
		t.Errorf("surge remedy = %s, want scale-out or move", d.Action)
	}
	if d.Action == service.ActionScaleOut && d.TargetHost != "h2" {
		t.Errorf("scale-out target = %s, want the spare blade h2", d.TargetHost)
	}
}
