package simulator

import (
	"testing"

	"autoglobe/internal/archive"
	"autoglobe/internal/chaos"
	"autoglobe/internal/wire"
)

// TestFailoverConvergesToFaultFreeLandscape is the acceptance run of
// the coordinator HA layer: a full simulated day with two hot-standby
// coordinators and a seeded fault schedule that repeatedly kills the
// leader outright and partitions it away (the split-brain drill) —
// with the landscape safety invariants asserted EVERY minute. The
// faulted run must converge to the same canonical landscape as a
// fault-free run of the identical configuration, every kill must cost
// exactly one epoch bump, the deposed-but-alive leader must be fenced
// by the epoch guard, and no host's heartbeat minute may be lost: the
// day profiles stay gap-free because agents buffer through the
// leaderless windows and the successor backfills them.
func TestFailoverConvergesToFaultFreeLandscape(t *testing.T) {
	run := func(t *testing.T, drv *chaos.Driver) *Simulator {
		t.Helper()
		lb := wire.NewLoopback()
		t.Cleanup(func() { lb.Close() })
		sim := declaredSim(t, func(c *Config) {
			tuneForActions(c)
			dc := &DistributedConfig{
				Transport:  lb,
				Dispatch:   chaosDispatch(),
				JournalDir: t.TempDir(),
				Standbys:   2,
			}
			if drv != nil {
				dc.Chaos = drv
			}
			c.Distributed = dc
		})
		if drv != nil {
			drv.Bind(lb)
			drv.KillLeader = func(step int) (bool, error) {
				return sim.Plane().Election().KillLeader(step)
			}
			drv.Leader = sim.Plane().Election().LeaderNode
		}
		minutes := 24 * 60
		for m := 0; m < minutes; m++ {
			if err := sim.Step(m); err != nil {
				t.Fatalf("minute %d: %v", m, err)
			}
			if err := sim.CheckInvariants(false); err != nil {
				t.Fatalf("minute %d: %v", m, err)
			}
		}
		if err := sim.CheckInvariants(true); err != nil {
			t.Fatalf("strict invariants at end of run: %v", err)
		}
		return sim
	}

	// The baseline also runs with standbys attached — leadership that is
	// never contested must be invisible to the control loop.
	base := run(t, nil)
	want := base.Landscape()
	if got := base.Plane().Election().Takeovers(); got != 0 {
		t.Fatalf("fault-free run elected %d successors", got)
	}

	// Leader faults only: the mixed-fault convergence is the chaos
	// test's job; this run isolates the failover machinery so the
	// gap-free profile assertion below is exact.
	profile := chaos.Profile{
		KillLeaderRate:     0.008,
		IsolateLeaderRate:  0.003,
		IsolateLeaderSteps: 4,
		QuietTail:          60,
	}
	hosts := base.Deployment().Cluster().Names()
	plan := chaos.NewPlan(11, 24*60, hosts, profile)
	drv := chaos.NewDriver(plan, nil)
	sim := run(t, drv)

	if drv.Remaining() != 0 {
		t.Errorf("chaos plan has %d injections left unapplied", drv.Remaining())
	}
	stats := drv.Stats()
	if stats[chaos.KindKillLeader] < 3 {
		t.Fatalf("chaos stats = %v: fewer than 3 leader kills landed — the run proves nothing", stats)
	}
	if stats[chaos.KindIsolateLeader] < 1 {
		t.Fatalf("chaos stats = %v: the split-brain drill never ran", stats)
	}

	election := sim.Plane().Election()
	takeovers := election.Takeovers()
	if takeovers < stats[chaos.KindKillLeader] {
		t.Errorf("takeovers = %d, want at least one per kill (%d)", takeovers, stats[chaos.KindKillLeader])
	}

	// Exactly one epoch bump per takeover: the initial open plus one
	// durable bump per successor, nothing double-counted, nothing lost.
	cj := sim.Plane().Dispatcher().Journal()
	if cj == nil {
		t.Fatal("failover run lost its journal")
	}
	if got, wantEpoch := cj.Epoch(), uint64(1+takeovers); got != wantEpoch {
		t.Errorf("journal epoch = %d, want %d (initial open + one per takeover)", got, wantEpoch)
	}

	// The deposed-but-alive leader was fenced, not obeyed: after its
	// partition healed, its stale-epoch announcements were rejected and
	// it stepped down.
	if got := election.FencedDepositions(); got < 1 {
		t.Errorf("fenced depositions = %d, want at least 1 from the isolation drill", got)
	}
	fenced := 0
	for _, host := range hosts {
		a, ok := sim.Plane().Agent(host)
		if !ok {
			t.Fatalf("no agent for host %q", host)
		}
		fenced += a.StaleNacks()
	}
	if fenced == 0 {
		t.Error("no agent ever rejected a stale-epoch message — the fencing path never fired")
	}

	// No heartbeat minute was lost: every host has exactly one archived
	// observation per minute of the day, including the leaderless
	// windows (buffered by the agents, backfilled by the successors).
	arch := sim.Archive()
	for _, host := range hosts {
		for m := 0; m < 24*60; m++ {
			if n := arch.ObservationCount(archive.HostEntity(host), m); n != 1 {
				t.Fatalf("host %s minute %d has %d observations, want exactly 1 — failover lost or duplicated a heartbeat minute", host, m, n)
			}
		}
	}
	if sim.res.DemotedHosts != 0 {
		t.Errorf("failover run demoted %d hosts — leader faults must not look like host deaths", sim.res.DemotedHosts)
	}

	if got := sim.Landscape(); got != want {
		t.Errorf("failover run did not converge to the fault-free landscape\n got:\n%s\nwant:\n%s", got, want)
	}
}
