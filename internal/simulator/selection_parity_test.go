package simulator

import (
	"fmt"
	"testing"
)

// TestSelectionWorkersByteIdentical is the determinism proof of
// parallel server selection: the worker count is purely a throughput
// knob. Candidate enumeration order is fixed by the placement index,
// the argmax comparator is a strict total order over hosts, and the
// per-chunk bests reduce with that same comparator — so a paper day
// decided with 1 scoring worker and with 8 must produce byte-identical
// runs, both equal to the serial default.
func TestSelectionWorkersByteIdentical(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := paperSim(t, func(c *Config) {
				c.Controller.SelectionWorkers = workers
			}).Run()
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, base, res, fmt.Sprintf("%d selection workers", workers))
		})
	}
}

// TestPlacementIndexByteIdentical pins that the feasibility index is an
// access-path change only: a paper day decided through the incremental
// index and through the full-scan reference path (the pre-index
// candidateHosts behavior) diverges in no decision, trigger tally or
// load sample.
func TestPlacementIndexByteIdentical(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := paperSim(t, func(c *Config) {
		c.Controller.DisablePlacementIndex = true
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "full-scan candidate enumeration")
}
