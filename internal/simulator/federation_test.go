package simulator

import (
	"testing"

	"autoglobe/internal/controller"
	"autoglobe/internal/registry"
	"autoglobe/internal/service"
)

// TestFederationMirrorsFullRun: a ServiceGlobe federation wired through
// the executor hook stays consistent with the deployment across a full
// full-mobility run — every instance has exactly one endpoint bound to
// its current host, and failures/scale churn never desynchronize the
// directory.
func TestFederationMirrorsFullRun(t *testing.T) {
	fed := registry.NewFederation()
	cfg := PaperConfig(service.FullMobility, 1.25)
	cfg.Hours = 48
	cfg.FailuresPerDay = 10
	cfg.WrapExecutor = func(dep *service.Deployment, exec controller.Executor) (controller.Executor, error) {
		for _, h := range dep.Cluster().Names() {
			if err := fed.Join(h); err != nil {
				return nil, err
			}
		}
		return registry.NewMirror(fed, dep, exec)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExecutedActions()) == 0 {
		t.Fatal("no controller actions — the mirror was not exercised")
	}

	// Controller actions go through the mirror; injected crashes and
	// restarts bypass it (they manipulate the deployment directly), so
	// reconcile once and then verify consistency.
	if _, err := registry.SyncDeployment(fed, sim.Deployment()); err != nil {
		t.Fatal(err)
	}
	insts := sim.Deployment().Instances()
	if fed.Len() != len(insts) {
		t.Fatalf("federation has %d endpoints, deployment %d instances", fed.Len(), len(insts))
	}
	for _, inst := range insts {
		eps := fed.Lookup(inst.Service)
		found := false
		for _, ep := range eps {
			if ep.InstanceID == inst.ID {
				found = true
				if ep.Host != inst.Host {
					t.Errorf("endpoint %s bound to %s, instance on %s", ep.InstanceID, ep.Host, inst.Host)
				}
				if got, ok := fed.Resolve(ep.ServiceIP); !ok || got.InstanceID != inst.ID {
					t.Errorf("service IP %v does not resolve to %s", ep.ServiceIP, inst.ID)
				}
			}
		}
		if !found {
			t.Errorf("instance %s has no endpoint", inst.ID)
		}
	}
}
