package simulator

import (
	"math"
	"testing"

	"autoglobe/internal/service"
	"autoglobe/internal/spec"
)

// TestDeclaredPaperLandscapeMatchesProgrammatic is the end-to-end
// round trip: export the paper's installation (including workload
// profiles) to the declarative XML language, re-parse it, build a
// simulator from the declaration, and check the run behaves like the
// programmatically configured one. Noise streams differ (instance IDs
// are assigned in a different order), so the comparison is on aggregate
// behaviour.
func TestDeclaredPaperLandscapeMatchesProgrammatic(t *testing.T) {
	l, err := spec.Paper(service.FullMobility, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := spec.ParseString(l.String()) // through the XML text
	if err != nil {
		t.Fatal(err)
	}
	l2.Simulation.Hours = 48
	declared, err := FromLandscape(l2)
	if err != nil {
		t.Fatal(err)
	}
	declaredRes, err := declared.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := PaperConfig(service.FullMobility, 1.15)
	cfg.Hours = 48
	programmatic, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	programmaticRes, err := programmatic.Run()
	if err != nil {
		t.Fatal(err)
	}

	dm, pm := declaredRes.MeanLoad(), programmaticRes.MeanLoad()
	if math.Abs(dm-pm) > 0.03 {
		t.Errorf("mean load declared %.3f vs programmatic %.3f — declaration does not reproduce the scenario", dm, pm)
	}
	// Both controllers act, and neither landscape ends up overloaded.
	if len(declaredRes.ExecutedActions()) == 0 {
		t.Error("declared landscape: controller never acted")
	}
	if declaredRes.Overloaded(DefaultOverloadBudget, DefaultStreakBudget) !=
		programmaticRes.Overloaded(DefaultOverloadBudget, DefaultStreakBudget) {
		t.Error("declared and programmatic runs disagree on the overload verdict")
	}
	if err := declared.Deployment().Validate(); err != nil {
		t.Errorf("declared deployment invalid after run: %v", err)
	}
}
