package simulator

import (
	"context"
	"fmt"
	"math"

	"autoglobe/internal/agent"
	"autoglobe/internal/cluster"
	"autoglobe/internal/journal"
	"autoglobe/internal/monitor"
	"autoglobe/internal/wire"
)

// Injector schedules fault injections against a distributed run. The
// chaos package's Driver implements it; the interface keeps the
// simulator from depending on the fault scheduler (the simulator only
// promises to call Apply at every minute boundary, before any
// heartbeat or dispatch of the minute).
type Injector interface {
	// Apply fires every injection scheduled at or before the step. An
	// error aborts the run.
	Apply(step int) error
}

// DistributedConfig runs the simulation over the real control plane
// instead of in-process function calls: every host gets an agent, the
// load observations travel as heartbeat messages to the coordinator,
// and every controller decision is dispatched to the affected host
// agents (with retries, idempotency and compensation) before it is
// applied to the model. With a fault-free transport the run is
// byte-identical to the in-process simulation — same triggers, same
// decisions, same action log — which is the correctness argument for
// the whole wire layer. With faults injected (drops, latency,
// partitions on a wire.Loopback) the run exercises the failure
// machinery: lost heartbeats feed the hysteresis liveness detector,
// dead hosts are demoted and their services restarted elsewhere,
// healed partitions re-pool the host.
type DistributedConfig struct {
	// Transport carries heartbeats, actions and probes (required).
	// wire.NewLoopback() keeps the run deterministic; wire.NewHTTP
	// moves the same bytes over real sockets.
	Transport wire.Transport
	// Dispatch tunes the action dispatcher (timeouts, retry budget,
	// backoff). The zero value uses the dispatcher defaults.
	Dispatch agent.DispatchConfig
	// HeartbeatTimeoutMinutes is how long a host may stay silent before
	// the coordinator probes it (default 2, the paper's heartbeat
	// timeout).
	HeartbeatTimeoutMinutes int
	// DeadAfter is the number of consecutive missed probes before a
	// silent host is declared dead and demoted (default 2).
	DeadAfter int
	// AliveAfter is the number of consecutive beats a demoted host must
	// deliver before it is re-pooled (default 2).
	AliveAfter int
	// JournalDir, when non-empty, makes the coordinator crash-safe: a
	// write-ahead action journal is opened (or recovered) there before
	// the run starts, every dispatched action is journaled ahead of the
	// transport, and agents fence superseded coordinator epochs. See
	// agent.Plane.AttachJournal.
	JournalDir string
	// JournalSync enables fsync-on-commit for the journal. Tests and
	// simulations leave it off (the "disk" is a temp dir and the crash
	// model is process death, not power loss); production daemons set it.
	JournalSync bool
	// Chaos, when set, injects faults at every minute boundary — before
	// any heartbeat or dispatch of the minute, so a coordinator crash
	// never lands mid-transaction. See the chaos package.
	Chaos Injector
	// Standbys, when positive, attaches that many hot-standby
	// coordinators (requires JournalDir): the plane runs lease-based
	// leader election, a killed or isolated leader is replaced after
	// the lease TTL, and agents buffer their heartbeat minutes through
	// the leaderless window. See agent.Election.
	Standbys int
	// LeaseTTL is the leadership lease time-to-live in minutes
	// (0: lease.DefaultTTL).
	LeaseTTL int
	// DispatchWorkers is the dispatcher's batch fan-out width (0: the
	// dispatcher default, one worker per CPU; 1: serial dispatch). Like
	// IngestShards it is purely a throughput knob — per-host lanes and
	// submission-order results keep runs byte-identical for any width.
	// Shorthand for Dispatch.Workers; a non-zero Dispatch.Workers wins.
	DispatchWorkers int
	// IngestShards is the coordinator's heartbeat ingest shard count
	// (0: the agent package default). Runs are byte-identical for any
	// shard count — the minute-boundary merge fixes the observation
	// order — so this is purely a concurrency/throughput knob for
	// large landscapes.
	IngestShards int
}

func (dc *DistributedConfig) timeout() int {
	if dc.HeartbeatTimeoutMinutes <= 0 {
		return 2
	}
	return dc.HeartbeatTimeoutMinutes
}

func (dc *DistributedConfig) deadAfter() int {
	if dc.DeadAfter <= 0 {
		return 2
	}
	return dc.DeadAfter
}

func (dc *DistributedConfig) aliveAfter() int {
	if dc.AliveAfter <= 0 {
		return 2
	}
	return dc.AliveAfter
}

// buildPlane wires the control plane for a distributed run and returns
// the executor wrapped with the dispatching layer. Called from
// newWithDeployment after WrapExecutor, so the dispatch layer is
// outermost: hosts acknowledge before the model (and any federation
// mirror) changes.
func (s *Simulator) buildPlane(dc *DistributedConfig, lms *monitor.System) error {
	if dc.Transport == nil {
		return fmt.Errorf("simulator: distributed mode needs a transport")
	}
	live := monitor.NewLivenessHysteresis(dc.timeout(), dc.deadAfter(), dc.aliveAfter())
	dispatch := dc.Dispatch
	if dispatch.Workers == 0 {
		dispatch.Workers = dc.DispatchWorkers
	}
	plane, err := agent.NewPlane(agent.PlaneConfig{
		Transport:    dc.Transport,
		Dispatch:     dispatch,
		Liveness:     live,
		IngestShards: dc.IngestShards,
	}, s.dep, lms)
	if err != nil {
		return err
	}
	s.plane = plane
	s.lostHosts = make(map[string]cluster.Host)
	s.everDemoted = make(map[string]bool)
	s.everCrashed = make(map[string]bool)
	s.chaos = dc.Chaos
	if dc.JournalDir != "" {
		if _, _, err := plane.AttachJournal(context.Background(), dc.JournalDir,
			journal.Options{NoSync: !dc.JournalSync}); err != nil {
			return err
		}
	}
	if dc.Standbys > 0 {
		if dc.JournalDir == "" {
			return fmt.Errorf("simulator: standby coordinators need a journal directory")
		}
		if _, err := plane.AttachStandbys(dc.Standbys, agent.ElectionConfig{TTL: dc.LeaseTTL}); err != nil {
			return err
		}
	}
	return nil
}

// Plane exposes the control plane of a distributed run (nil otherwise).
func (s *Simulator) Plane() *agent.Plane { return s.plane }

// observeDistributed is the distributed twin of observe: the same load
// numbers leave each host as a heartbeat message, the coordinator's
// unchanged monitor pipeline turns them into confirmed triggers, and
// silent hosts are probed, demoted when dead and re-pooled when healed.
//
// Ordering replicates the in-process loop exactly — hosts in cluster
// order, then services in catalog order (the coordinator closes the
// minute in catalog order and sums instance samples in instance-ID
// order, the order the in-process loop iterates) — so with a fault-free
// transport the trigger stream is byte-identical.
func (s *Simulator) observeDistributed(minute int) ([]*monitor.Trigger, error) {
	ctx := context.Background()
	election := s.plane.Election()
	if election != nil {
		// The election ticks before the minute's reports: a takeover's
		// announcement redirects the reporters, so the backlog they
		// buffered through the leaderless window drains to the new
		// leader within the same minute it is elected.
		if err := election.Tick(ctx, minute); err != nil {
			return nil, err
		}
	}
	coord := s.plane.Coordinator()

	for _, hostName := range s.dep.Cluster().Names() {
		raw, mem := s.hostRaw(hostName)
		rep, ok := s.plane.Reporter(hostName)
		if !ok {
			return nil, fmt.Errorf("simulator: no agent attached for host %q", hostName)
		}
		// The reporter batches the minute's instance samples into one
		// reusable envelope — the steady-state heartbeat path allocates
		// nothing (see agent.HeartbeatReporter).
		rep.Begin(minute, math.Min(1, raw), mem)
		for _, inst := range s.dep.InstancesOn(hostName) {
			rep.Sample(inst.ID, inst.Service, s.instanceLoad(inst))
		}
		hbCtx, cancel := context.WithTimeout(ctx, s.plane.HeartbeatTimeout)
		// A delivery failure is not a run error: a missed heartbeat is
		// exactly the signal the liveness detector consumes.
		_ = rep.Send(hbCtx)
		cancel()
	}
	if election != nil && !election.LeaderAlive() {
		// Leaderless minute: the reports above failed and sit buffered in
		// the agents; there is no coordinator to merge, probe or trigger.
		// The next takeover replays the backlog as if the minute had been
		// observed on time.
		return nil, nil
	}
	// Ingestion errors (a corrupt message, an archive failure) are
	// swallowed into timeouts on the agent side; surface them here.
	if err := coord.Err(); err != nil {
		return nil, err
	}
	if err := coord.ObserveServices(minute); err != nil {
		return nil, err
	}

	dead, recovered := coord.CheckLiveness(ctx, minute)
	for _, host := range dead {
		if err := s.demoteHost(host, minute); err != nil {
			return nil, err
		}
	}
	for _, host := range recovered {
		if err := s.repoolHost(host); err != nil {
			return nil, err
		}
	}

	triggers := coord.TakeTriggers()
	for _, tr := range triggers {
		s.res.TriggerCount[tr.Kind]++
	}
	return triggers, nil
}

// demoteHost removes a dead host from the pool: its instances are gone
// with it (their sessions are remembered), the monitor registration is
// cleared (liveness keeps tracking the host so a healed partition can
// re-pool it), and the controller restarts the lost services elsewhere,
// restoring the orphaned sessions onto the replacements.
func (s *Simulator) demoteHost(host string, minute int) error {
	insts := s.dep.InstancesOn(host)
	lost := make([]crashInfo, 0, len(insts))
	lostServices := make([]string, 0, len(insts))
	for _, inst := range insts {
		lost = append(lost, crashInfo{
			service: inst.Service, host: inst.Host,
			users: inst.Users, priority: inst.Priority,
		})
		lostServices = append(lostServices, inst.Service)
		// The host's failure is handled here, not by the per-instance
		// self-healing path.
		delete(s.crashed, inst.ID)
		s.liveness.Forget(inst.ID)
		if err := s.dep.Stop(inst.ID, true); err != nil {
			return err
		}
	}
	if h, ok := s.dep.Cluster().Host(host); ok {
		s.lostHosts[host] = h
		if err := s.dep.Cluster().Remove(host); err != nil {
			return err
		}
	}
	// The dead host's agent was never told to stop anything — its process
	// table keeps the orphans (a real blade would be rebooted before
	// re-pooling). The invariant checker exempts it permanently.
	s.everDemoted[host] = true
	s.plane.Coordinator().Forget(host)
	s.res.DemotedHosts++

	if s.cfg.DisableController {
		return nil
	}
	decisions, err := s.ctl.HandleHostFailure(host, lostServices, minute)
	if err != nil {
		return err
	}
	for i, d := range decisions {
		if d == nil {
			s.res.FailedRestarts++
			continue
		}
		info := lost[i]
		for _, inst := range s.dep.InstancesOf(info.service) {
			if inst.Host == d.TargetHost {
				inst.Users += info.users
				inst.Priority = info.priority
				break
			}
		}
		s.res.Restarts++
	}
	return nil
}

// repoolHost re-admits a demoted host after its recovery streak: the
// host rejoins the pool empty (its old instances were restarted
// elsewhere), its load series is padded for the minutes it was out, and
// its resumed heartbeats re-register it with the monitor.
func (s *Simulator) repoolHost(host string) error {
	h, ok := s.lostHosts[host]
	if !ok {
		return nil // flap absorbed before demotion; nothing to re-pool
	}
	delete(s.lostHosts, host)
	if err := s.dep.Cluster().Add(h); err != nil {
		return err
	}
	for len(s.res.HostLoad[host]) < s.res.Minutes {
		s.res.HostLoad[host] = append(s.res.HostLoad[host], 0)
	}
	s.res.RepooledHosts++
	return nil
}
