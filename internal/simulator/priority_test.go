package simulator

import (
	"testing"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
	"autoglobe/internal/workload"
)

// TestPrioritySharesCPU: on an oversubscribed host, the
// increase/reduce-priority actions change how the scarce CPU is split —
// the mechanism behind the controller's priority actions (Table 2).
func TestPrioritySharesCPU(t *testing.T) {
	cl := cluster.MustNew(cluster.Host{
		Name: "h", Category: "t", PerformanceIndex: 1, CPUs: 1,
		ClockMHz: 1000, CacheKB: 512, MemoryMB: 4096, SwapMB: 4096, TempMB: 1024,
	})
	cat := service.MustCatalog(
		&service.Service{Name: "a", Type: service.TypeInteractive, MinInstances: 1,
			MemoryMBPerInstance: 1024, UsersPerUnit: 150, RequestWeight: 1},
		&service.Service{Name: "b", Type: service.TypeInteractive, MinInstances: 1,
			MemoryMBPerInstance: 1024, UsersPerUnit: 150, RequestWeight: 1},
	)
	dep := service.NewDeployment(cl, cat)
	ia, err := dep.Start("a", "h")
	if err != nil {
		t.Fatal(err)
	}
	ib, err := dep.Start("b", "h")
	if err != nil {
		t.Fatal(err)
	}
	// Each demands 90 % of the host: 2× oversubscription.
	ia.Users, ib.Users = 135, 135

	cfg := PaperConfig(service.ConstrainedMobility, 1.0)
	cfg.Hours = 1
	cfg.JitterAmplitude = 0
	cfg.FluctuationPerHour = 0
	cfg.DisableController = true
	gen := workload.MustGenerator(workload.Jitter{},
		workload.Source{Service: "a", Users: 135, Profile: workload.Flat(1)},
		workload.Source{Service: "b", Users: 135, Profile: workload.Flat(1)},
	)
	sim, err := NewCustom(cfg, dep, gen)
	if err != nil {
		t.Fatal(err)
	}

	// Equal priorities: equal shares.
	if err := sim.Step(0); err != nil {
		t.Fatal(err)
	}
	if sim.actual[ia.ID] != sim.actual[ib.ID] {
		t.Fatalf("equal priorities got unequal shares: %g vs %g",
			sim.actual[ia.ID], sim.actual[ib.ID])
	}
	total := sim.actual[ia.ID] + sim.actual[ib.ID]
	if total > 1.0001 {
		t.Fatalf("granted CPU %g exceeds host capacity", total)
	}

	// Raise a's priority: it receives the larger share; capacity is
	// still fully used, nothing is conjured.
	ia.Priority = 1
	if err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	if !(sim.actual[ia.ID] > sim.actual[ib.ID]) {
		t.Errorf("priority +1 did not increase a's share: %g vs %g",
			sim.actual[ia.ID], sim.actual[ib.ID])
	}
	total = sim.actual[ia.ID] + sim.actual[ib.ID]
	if total > 1.0001 || total < 0.999 {
		t.Errorf("granted CPU %g, want the full host", total)
	}
}
