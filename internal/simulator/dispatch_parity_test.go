package simulator

import (
	"fmt"
	"testing"

	"autoglobe/internal/service"
	"autoglobe/internal/wire"
)

// paperSim builds a full-mobility paper scenario — the declared test
// landscape never executes actions (its decisions are all vetoed), so
// dispatch parity needs a run whose controller genuinely moves, starts
// and stops instances through the dispatcher.
func paperSim(t *testing.T, adjust func(*Config)) *Simulator {
	t.Helper()
	cfg := PaperConfig(service.FullMobility, 1.15)
	cfg.Hours = 24
	if adjust != nil {
		adjust(&cfg)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestDispatchWorkersByteIdentical is the determinism proof of the
// parallel dispatch plane: the worker count is purely a throughput
// knob. Idempotency keys are minted serially in submission order
// before any worker runs, each host's lane is owned by one worker
// end-to-end, and results come back in submission order — so a
// landscape driven through 1 worker and through 8 must produce
// byte-identical runs, both equal to the in-process simulation.
func TestDispatchWorkersByteIdentical(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			lb := wire.NewLoopback()
			defer lb.Close()
			lb.SetCodec(wire.CodecBinary)
			sim := paperSim(t, func(c *Config) {
				c.Distributed = &DistributedConfig{
					Transport:       lb,
					DispatchWorkers: workers,
				}
			})
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, base, res, fmt.Sprintf("binary loopback (%d dispatch workers)", workers))
			disp := sim.Plane().Dispatcher()
			if got := disp.Workers(); got != workers {
				t.Errorf("dispatcher runs %d workers, want %d", got, workers)
			}
			if st := disp.Stats(); st.Actions == 0 {
				t.Error("run dispatched no actions — the parity comparison is vacuous")
			}
		})
	}
}

// TestDispatchWorkersHTTPByteIdentical repeats the identity over real
// sockets: parallel per-host fan-out through net/http round trips —
// with their genuinely nondeterministic completion interleaving —
// still yields the byte-identical decision stream.
func TestDispatchWorkersHTTPByteIdentical(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}

	tr := wire.NewHTTP()
	defer tr.Close()
	tr.Codec = wire.CodecBinary
	sim := paperSim(t, func(c *Config) {
		c.Distributed = &DistributedConfig{
			Transport:       tr,
			DispatchWorkers: 8,
		}
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "http binary (8 dispatch workers)")
	if st := sim.Plane().Dispatcher().Stats(); st.Actions == 0 {
		t.Error("run dispatched no actions — the parity comparison is vacuous")
	}
}
