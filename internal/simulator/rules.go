package simulator

import (
	"fmt"

	"autoglobe/internal/agent"
	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/monitor"
	"autoglobe/internal/rules"
	"autoglobe/internal/service"
)

// loadRuleDir loads a versioned rule-base directory into a registry and
// hot-swaps the highest version of each base into the controller.
// Validation (parse, vocabulary, compile) happens in the registry
// before any swap; a base no controller slot answers to is an error.
func loadRuleDir(ctl *controller.Controller, dir string) error {
	reg := rules.New(controller.RuleVocabulary)
	if _, err := agent.LoadRuleDir(reg, ctl, dir); err != nil {
		return fmt.Errorf("simulator: rules dir %s: %w", dir, err)
	}
	return nil
}

// shadowOverlay loads a candidate rule directory and routes its bases
// into the overlay maps controller.Shadow takes — the same by-name
// routing a live swap uses, but without touching the active rule set.
func shadowOverlay(dir string) (map[monitor.TriggerKind]*fuzzy.RuleBase, map[service.Action]*fuzzy.RuleBase, error) {
	action, selection, err := agent.ShadowOverlayDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("simulator: shadow rules dir %s: %w", dir, err)
	}
	return action, selection, nil
}
