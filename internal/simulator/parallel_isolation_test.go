package simulator

import (
	"reflect"
	"testing"

	"autoglobe/internal/service"
)

// TestConcurrentRunsIsolated is the safety argument behind the parallel
// sweep engine (internal/experiments): simulator runs share no mutable
// state — each builds its own deployment, workload generator, archive,
// monitor, controller and RNG — so identically configured runs executed
// concurrently must produce exactly the result of a sequential run.
// Under -race this also proves the shared compiled default rule bases
// are touched read-only.
func TestConcurrentRunsIsolated(t *testing.T) {
	cfg := PaperConfig(service.FullMobility, 1.15)
	cfg.Hours = 12
	cfg.Seed = 7

	run := func() (*Result, error) {
		sim, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}

	want, err := run()
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 4
	results := make([]*Result, concurrent)
	errs := make([]error, concurrent)
	done := make(chan int, concurrent)
	for g := 0; g < concurrent; g++ {
		go func(g int) {
			results[g], errs[g] = run()
			done <- g
		}(g)
	}
	for i := 0; i < concurrent; i++ {
		<-done
	}
	for g := 0; g < concurrent; g++ {
		if errs[g] != nil {
			t.Fatalf("concurrent run %d: %v", g, errs[g])
		}
		if results[g].String() != want.String() {
			t.Errorf("concurrent run %d renders differently from the sequential run", g)
		}
		if !reflect.DeepEqual(results[g].HostLoad, want.HostLoad) {
			t.Errorf("concurrent run %d: host load series differ from the sequential run", g)
		}
		if !reflect.DeepEqual(results[g].ActionCounts(), want.ActionCounts()) {
			t.Errorf("concurrent run %d: action counts differ: %v vs %v",
				g, results[g].ActionCounts(), want.ActionCounts())
		}
	}
}
