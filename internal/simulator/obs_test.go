package simulator

import (
	"fmt"
	"strings"
	"testing"

	"autoglobe/internal/obs"
	"autoglobe/internal/wire"
)

// renderTraces flattens every trace of a run into comparable lines:
// minute, trigger, outcome, and — where the controller resolved one —
// the decision with its full rule provenance. Dispatch events are
// deliberately excluded: only distributed runs have them. Floats use
// %v, so two runs compare equal only if every applicability, host
// score and provenance line is bit-identical.
func renderTraces(traces []obs.Trace) (lines []string, decisions int) {
	for _, tc := range traces {
		line := fmt.Sprintf("%d|%s(%s)|%s", tc.Minute, tc.Trigger.Kind, tc.Trigger.Entity, tc.Outcome)
		if d := tc.Decision; d != nil {
			decisions++
			line += fmt.Sprintf("|%s %s inst=%s %s->%s a=%v h=%v|%s",
				d.Action, d.Service, d.InstanceID, d.SourceHost, d.TargetHost,
				d.Applicability, d.HostScore, d.Provenance)
		}
		lines = append(lines, line)
	}
	return lines, decisions
}

// tuneForDecisions makes the declared landscape actually execute
// actions: with the default applicability and host-score thresholds
// its triggers all resolve to administrator alerts, which would leave
// the decision half of the parity comparison vacuous.
func tuneForDecisions(c *Config) {
	tuneForActions(c)
	c.Controller.MinApplicability = 0.05
	c.Controller.MinHostScore = 0.05
}

// tracedRun executes the declared landscape with a tracer and registry
// attached and returns the rendered trace lines.
func tracedRun(t *testing.T, label string, adjust func(*Config)) []string {
	t.Helper()
	tr := obs.NewTracer(4096)
	r := obs.NewRegistry()
	sim := declaredSim(t, func(c *Config) {
		tuneForDecisions(c)
		c.Obs = r
		c.Tracer = tr
		if adjust != nil {
			adjust(c)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	lines, decisions := renderTraces(tr.Snapshot())
	if len(lines) == 0 {
		t.Fatalf("%s: run produced no traces — the comparison is vacuous", label)
	}
	if decisions == 0 {
		t.Fatalf("%s: no trace carries a decision — the provenance comparison is vacuous", label)
	}
	// Every traced decision must carry counted metrics alongside.
	snap := r.Snapshot()
	var decided float64
	for key, v := range snap {
		if strings.HasPrefix(key, obsDecisionsPrefix) {
			decided += v
		}
	}
	if int(decided) != decisions {
		t.Fatalf("%s: %d traced decisions but decision counter sums to %v", label, decisions, decided)
	}
	return lines
}

const obsDecisionsPrefix = "autoglobe_controller_decisions_total{"

// TestTraceDecisionParityAcrossTransports extends the byte-identity
// claim to the observability layer: the decision stream recorded by the
// tracer — action, instance, hosts, applicability, host score, and the
// full rule provenance — is identical whether the control loop runs
// in-process, over a loopback transport, or over real HTTP sockets.
func TestTraceDecisionParityAcrossTransports(t *testing.T) {
	base := tracedRun(t, "in-process", nil)

	lb := wire.NewLoopback()
	defer lb.Close()
	loop := tracedRun(t, "loopback", func(c *Config) {
		c.Distributed = &DistributedConfig{Transport: lb}
	})

	ht := wire.NewHTTP()
	defer ht.Close()
	http := tracedRun(t, "http", func(c *Config) {
		c.Distributed = &DistributedConfig{Transport: ht}
	})

	for _, got := range []struct {
		label string
		lines []string
	}{{"loopback", loop}, {"http", http}} {
		if len(got.lines) != len(base) {
			t.Fatalf("%s: %d traces, in-process %d\n got: %v\nwant: %v",
				got.label, len(got.lines), len(base), got.lines, base)
		}
		for i := range base {
			if got.lines[i] != base[i] {
				t.Fatalf("%s: trace %d diverges\n got: %s\nwant: %s",
					got.label, i, got.lines[i], base[i])
			}
		}
	}
}

// TestObsDoesNotPerturbRun pins the attach-only property: a run with
// full instrumentation produces the same action log and load series as
// an uninstrumented run.
func TestObsDoesNotPerturbRun(t *testing.T) {
	plain, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := declaredSim(t, func(c *Config) {
		tuneForActions(c)
		c.Obs = obs.NewRegistry()
		c.Tracer = obs.NewTracer(0)
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, plain, instrumented, "instrumented")
}

// TestDistributedTraceCarriesDispatches asserts the distributed-only
// half of a trace: executed decisions carry per-host dispatch events
// acknowledged by the agents.
func TestDistributedTraceCarriesDispatches(t *testing.T) {
	lb := wire.NewLoopback()
	defer lb.Close()
	tr := obs.NewTracer(4096)
	sim := declaredSim(t, func(c *Config) {
		tuneForDecisions(c)
		c.Tracer = tr
		c.Distributed = &DistributedConfig{Transport: lb}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var executed, withDispatch int
	for _, tc := range tr.Snapshot() {
		if tc.Outcome != obs.OutcomeExecuted {
			continue
		}
		executed++
		if len(tc.Dispatches) == 0 {
			continue
		}
		withDispatch++
		for _, ev := range tc.Dispatches {
			if !ev.OK {
				t.Errorf("fault-free dispatch failed: %+v", ev)
			}
			if ev.Attempts < 1 {
				t.Errorf("dispatch with %d attempts: %+v", ev.Attempts, ev)
			}
		}
	}
	if executed == 0 {
		t.Fatal("no executed traces")
	}
	if withDispatch == 0 {
		t.Fatal("no executed trace carries dispatch events")
	}
}
