package simulator

import (
	"os"
	"path/filepath"
	"testing"

	"autoglobe/internal/controller"
	"autoglobe/internal/obs"
	"autoglobe/internal/rules"
	"autoglobe/internal/service"
)

// paperSim0 is paperSim without the fatal-on-error wrapping, for tests
// that expect the build itself to fail.
func paperSim0(adjust func(*Config)) (*Simulator, error) {
	cfg := PaperConfig(service.FullMobility, 1.15)
	cfg.Hours = 24
	if adjust != nil {
		adjust(&cfg)
	}
	return New(cfg)
}

// swapDefaults pushes fresh compilations of the default rule sources
// through the registry and into the controller — semantically identical
// bases, brand-new pointers.
func swapDefaults(t *testing.T, ctl *controller.Controller) {
	t.Helper()
	reg := rules.New(controller.RuleVocabulary)
	for name, src := range controller.DefaultRuleSources() {
		e, err := reg.Put(name, src)
		if err != nil {
			t.Fatalf("recompile %s: %v", name, err)
		}
		if err := ctl.SwapRuleBase(name, e.Base); err != nil {
			t.Fatalf("swap %s: %v", name, err)
		}
	}
}

// TestHotSwapIdenticalBaseMidRunByteIdentical is the atomicity proof of
// the hot-swap path at system scale: re-compiling every default rule
// base from source and swapping the whole set into the live controller
// in the middle of a simulated day changes not a single decision — the
// run is byte-identical to one that never swapped.
func TestHotSwapIdenticalBaseMidRunByteIdentical(t *testing.T) {
	base, err := declaredSim(t, tuneForActions).Run()
	if err != nil {
		t.Fatal(err)
	}

	sim := declaredSim(t, tuneForActions)
	minutes := sim.cfg.Hours * 60
	for m := 0; m < minutes; m++ {
		if m == minutes/2 {
			swapDefaults(t, sim.ctl)
		}
		if err := sim.Step(m); err != nil {
			t.Fatal(err)
		}
	}
	sim.res.Actions = sim.ctl.Events()
	assertIdentical(t, base, sim.res, "identical-base mid-run swap")
}

// writeRuleFile writes one versioned rule file into a registry-layout
// directory.
func writeRuleFile(t *testing.T, dir, name string, version int, src string) {
	t.Helper()
	path := rules.EntryPath(dir, name, version)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// perturbedIdle is a serviceIdle candidate that scales in on *any*
// low-load service — a visible semantic departure from the default
// base, which shrinks only when the instance count is clearly
// excessive or the host is contended.
const perturbedIdle = "IF serviceLoad IS low THEN scaleIn IS applicable\n"

// TestShadowRulesDiffOnSimulatedDay is the acceptance run for shadow
// mode: a perturbed candidate rides along a full simulated day, its
// decisions demonstrably diverge from the active rule set's, and yet
// the run is byte-identical to one without any shadow — the candidate
// never executes anything.
func TestShadowRulesDiffOnSimulatedDay(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	writeRuleFile(t, dir, "serviceIdle", 1, perturbedIdle)
	reg := obs.NewRegistry()
	sim := paperSim(t, func(c *Config) {
		c.ShadowRulesDir = dir
		c.ShadowLabel = "perturbed@v1"
		c.Obs = reg
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, res, "shadow-evaluated run")

	st := sim.ctl.ShadowStats()
	if st.Evals == 0 {
		t.Fatal("shadow candidate was never evaluated — the diff claim is vacuous")
	}
	if st.Diffs == 0 {
		t.Fatal("perturbed candidate never disagreed with the active rule set")
	}
	if v := reg.Counter(controller.MetricShadowEvals, "candidate", "perturbed@v1").Value(); v != float64(st.Evals) {
		t.Errorf("%s = %v, want %d", controller.MetricShadowEvals, v, st.Evals)
	}
	if v := reg.Counter(controller.MetricShadowDiffs, "candidate", "perturbed@v1", "field", "action").Value(); v == 0 {
		t.Errorf("no action-field diffs counted in %s", controller.MetricShadowDiffs)
	}
}

// TestRulesDirActivatesOnStartup proves the file-driven activation
// path: a rules directory holding a perturbed active base changes the
// controller's behaviour from minute 0, and a higher version shadows a
// lower one.
func TestRulesDirActivatesOnStartup(t *testing.T) {
	base, err := paperSim(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Actions) == 0 {
		t.Fatal("baseline run decided nothing — comparison is vacuous")
	}

	dir := t.TempDir()
	// v1 is the default source; v2 the perturbation — LoadDir must
	// activate v2.
	writeRuleFile(t, dir, "serviceIdle", 1, controller.DefaultRuleSources()["serviceIdle"])
	writeRuleFile(t, dir, "serviceIdle", 2, perturbedIdle)
	res, err := paperSim(t, func(c *Config) {
		c.RulesDir = dir
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	wantLog, gotLog := renderEvents(base.Actions), renderEvents(res.Actions)
	same := len(wantLog) == len(gotLog)
	if same {
		for i := range wantLog {
			if wantLog[i] != gotLog[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("perturbed rules dir changed no decision (%d events)", len(gotLog))
	}

	// A directory with an unroutable base name fails loudly at build.
	bad := t.TempDir()
	writeRuleFile(t, bad, "noSuchSlot", 1, perturbedIdle)
	if _, err := paperSim0(func(c *Config) { c.RulesDir = bad }); err == nil {
		t.Fatal("unroutable rules dir accepted")
	}
}
