package simulator

import (
	"fmt"
	"sort"
	"strings"
)

// CheckInvariants verifies the landscape safety invariants the chaos
// harness asserts every simulated minute. The paper's pitch is that the
// autonomic controller rides out "failure situations like a program
// crash" without an administrator; these checks define what "rides out"
// means — no fault schedule may ever produce an allocation the
// declarative constraint set forbids, and in distributed mode the
// hosts' process tables must agree with the authoritative model (a
// disagreement is a double-executed or lost action, exactly the bugs
// the journal/idempotency machinery exists to prevent).
//
// Non-strict checks hold at EVERY minute, faults in flight or not:
//
//   - no service above its MaxInstances;
//   - exclusivity respected, at most one instance of a service per
//     host, MinPerfIndex honored, host memory not oversubscribed;
//   - every instance placed on a pooled host;
//   - (distributed) model ⇄ agent process-table agreement, modulo
//     in-model crash injections and ever-demoted hosts, whose agents
//     legitimately keep orphans.
//
// Strict mode additionally requires every service at or above its
// MinInstances — transiently violable mid-recovery (a demoted host's
// instance is down until the controller restarts it elsewhere), so it
// is asserted only at convergence points (end of run, quiet tail).
func (s *Simulator) CheckInvariants(strict bool) error {
	dep := s.dep
	cat := dep.Catalog()
	for _, name := range cat.Names() {
		svc, _ := cat.Get(name)
		n := dep.CountOf(name)
		if svc.MaxInstances > 0 && n > svc.MaxInstances {
			return fmt.Errorf("simulator: invariant: %q runs %d instances, above maximum %d",
				name, n, svc.MaxInstances)
		}
		if strict && n < svc.MinInstances {
			return fmt.Errorf("simulator: invariant: %q runs %d instances, below minimum %d",
				name, n, svc.MinInstances)
		}
	}
	for _, hostName := range dep.Cluster().Names() {
		h, _ := dep.Cluster().Host(hostName)
		insts := dep.InstancesOn(hostName)
		seen := make(map[string]bool, len(insts))
		memUsed := 0
		for _, inst := range insts {
			svc, ok := cat.Get(inst.Service)
			if !ok {
				return fmt.Errorf("simulator: invariant: instance %s has unknown service %q",
					inst.ID, inst.Service)
			}
			if svc.Exclusive && len(insts) > 1 {
				return fmt.Errorf("simulator: invariant: exclusive service %q shares host %q",
					svc.Name, hostName)
			}
			if seen[inst.Service] {
				return fmt.Errorf("simulator: invariant: two instances of %q on host %q",
					inst.Service, hostName)
			}
			seen[inst.Service] = true
			if !svc.CanRunOn(h) {
				return fmt.Errorf("simulator: invariant: %q on %q violates minimum performance index %g",
					svc.Name, hostName, svc.MinPerfIndex)
			}
			memUsed += svc.MemoryMBPerInstance
		}
		if memUsed > h.MemoryMB {
			return fmt.Errorf("simulator: invariant: host %q memory oversubscribed: %d MB > %d MB",
				hostName, memUsed, h.MemoryMB)
		}
	}
	for _, inst := range dep.Instances() {
		if _, ok := dep.Cluster().Host(inst.Host); !ok {
			return fmt.Errorf("simulator: invariant: instance %s placed on unpooled host %q",
				inst.ID, inst.Host)
		}
	}
	if s.plane != nil {
		return s.checkAgentConsistency()
	}
	return nil
}

// checkAgentConsistency asserts that every pooled host's agent agrees
// with the authoritative model: every model instance is in its agent's
// process table under the right service, and every agent process is in
// the model. Two legitimate divergences are exempted: instances killed
// by in-model crash injection (the agent never hears about a simulated
// process death — the real-world analogue detects it host-locally),
// and hosts that were ever demoted or force-removed (their agents keep
// the orphaned processes of the "dead" blade).
func (s *Simulator) checkAgentConsistency() error {
	for _, hostName := range s.dep.Cluster().Names() {
		if s.everDemoted[hostName] {
			continue
		}
		a, ok := s.plane.Agent(hostName)
		if !ok {
			return fmt.Errorf("simulator: invariant: pooled host %q has no agent", hostName)
		}
		procs := a.Instances()
		for _, inst := range s.dep.InstancesOn(hostName) {
			svc, ok := procs[inst.ID]
			if !ok {
				return fmt.Errorf("simulator: invariant: model instance %s on %q missing from its agent's process table (lost action?)",
					inst.ID, hostName)
			}
			if svc != inst.Service {
				return fmt.Errorf("simulator: invariant: instance %s is %q in the model but %q on agent %q",
					inst.ID, inst.Service, svc, hostName)
			}
			delete(procs, inst.ID)
		}
		for id := range procs {
			if s.everCrashed[id] {
				continue
			}
			return fmt.Errorf("simulator: invariant: agent %q runs orphan process %s absent from the model (double-executed action?)",
				hostName, id)
		}
	}
	return nil
}

// Landscape renders the current allocation canonically: one line per
// pooled host (sorted), listing the services of its instances (sorted).
// Instance IDs, users and priorities are deliberately omitted — two
// runs that place the same services on the same hosts have converged to
// the same landscape even if they took different trigger timings (and
// therefore different instance IDs) to get there, which is the
// equivalence the chaos convergence test asserts.
func (s *Simulator) Landscape() string {
	hosts := append([]string(nil), s.dep.Cluster().Names()...)
	sort.Strings(hosts)
	var b strings.Builder
	for _, h := range hosts {
		insts := s.dep.InstancesOn(h)
		names := make([]string, 0, len(insts))
		for _, inst := range insts {
			names = append(names, inst.Service)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s: %s\n", h, strings.Join(names, " "))
	}
	return b.String()
}
