//go:build ignore

// gen_corpus regenerates the checked-in seed corpus for
// FuzzEnvelopeDecode (testdata/fuzz/FuzzEnvelopeDecode). The corpus
// mirrors the f.Add seeds of the fuzz target — one valid frame per
// binary kind plus the handcrafted malformed mutations (truncation,
// lying length, bad magic, unknown kind, trailing bytes) — so a plain
// `go test` replays them all as regression inputs. Run from this
// directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"autoglobe/internal/wire"
)

func main() {
	envs := map[string]*wire.Envelope{
		"seed-heartbeat": {Version: wire.Version, Type: wire.TypeHeartbeat, From: "b1", To: "coordinator", Seq: 7,
			Heartbeat: &wire.Heartbeat{Host: "b1", Minute: 42, CPU: 0.5, Mem: 0.25,
				Instances: []wire.InstanceSample{
					{ID: "app-1", Service: "app", Load: 0.3},
					{ID: "app-2", Service: "app", Load: 0.2},
				}}},
		"seed-action": {Version: wire.Version, Type: wire.TypeAction, From: "coordinator", To: "b1", Seq: 8, Epoch: 2,
			Action: &wire.ActionRequest{Key: "coordinator-e2-000001", Op: wire.OpStart,
				Host: "b1", Service: "app", InstanceID: "app-3", Delta: 1,
				DeadlineUnixMS: 1700000000000}},
		"seed-ack": {Version: wire.Version, Type: wire.TypeAck, From: "b1", To: "coordinator", Seq: 9,
			Ack: &wire.ActionAck{Key: "coordinator-e2-000001", OK: true, Duplicate: true}},
		"seed-nack": {Version: wire.Version, Type: wire.TypeAck, From: "b1", To: "coordinator", Seq: 10,
			Ack: &wire.ActionAck{Key: "coordinator-e2-000002", Error: "unknown instance"}},
		"seed-probe": {Version: wire.Version, Type: wire.TypeProbe, From: "coordinator", To: "b1",
			Probe: &wire.Probe{Host: "b1", Minute: 42}},
		"seed-probe-ack": {Version: wire.Version, Type: wire.TypeProbeAck, From: "b1", To: "coordinator",
			Probe: &wire.Probe{Host: "b1", Minute: 42}},
		"seed-hello": {Version: wire.Version, Type: wire.TypeHello, From: "b9", To: "coordinator",
			Hello: &wire.Hello{Host: "b9", PerformanceIndex: 1.25, MemoryMB: 4096,
				Addr: "http://127.0.0.1:8147"}},
		"seed-rule-get": {Version: wire.Version, Type: wire.TypeRuleGet, From: "admin", To: "coordinator", Seq: 11,
			RuleGet: &wire.RuleGet{Name: "serviceOverloaded", Version: 2}},
		"seed-rule-put": {Version: wire.Version, Type: wire.TypeRulePut, From: "admin", To: "coordinator", Seq: 12,
			RulePut: &wire.RulePut{Name: "select/placement", Version: 3,
				Hash:     "ab12cd34",
				Source:   "IF cpuLoad IS high THEN scaleOut IS applicable\n",
				Activate: true}},
		"seed-rule-put-err": {Version: wire.Version, Type: wire.TypeRulePut, From: "coordinator", To: "admin", Seq: 13,
			RulePut: &wire.RulePut{Name: "serverIdle", Error: "fuzzy: parse error at line 1"}},
		"seed-rule-list": {Version: wire.Version, Type: wire.TypeRuleList, From: "admin", To: "coordinator",
			RuleList: &wire.RuleList{}},
		"seed-rule-list-reply": {Version: wire.Version, Type: wire.TypeRuleList, From: "coordinator", To: "admin",
			RuleList: &wire.RuleList{Entries: []wire.RuleInfo{
				{Name: "select/placement", Version: 3, Hash: "ab12cd34", Active: true, Rules: 5},
				{Name: "serviceOverloaded", Version: 1, Hash: "99ff00aa", Rules: 2},
			}}},
		"seed-lease": {Version: wire.Version, Type: wire.TypeLease, From: "coordinator", To: "b1", Seq: 14, Epoch: 3,
			Lease: &wire.Lease{Leader: "coordinator", Epoch: 3, Minute: 615}},
		"seed-lease-ack": {Version: wire.Version, Type: wire.TypeLeaseAck, From: "b1", To: "coordinator", Seq: 15,
			Lease: &wire.Lease{Leader: "standby-1", Epoch: 4, Minute: 616}},
	}

	corpus := make(map[string][]byte, len(envs)+8)
	for name, env := range envs {
		frame, err := wire.AppendEnvelope(nil, env)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		corpus[name] = frame
	}

	hb := corpus["seed-heartbeat"]
	clone := func(mut func(b []byte)) []byte {
		c := append([]byte(nil), hb...)
		mut(c)
		return c
	}
	corpus["seed-empty"] = nil
	corpus["seed-magic-only"] = []byte{0xA7}
	corpus["seed-truncated-payload"] = hb[:len(hb)-3]
	corpus["seed-truncated-header"] = hb[:7]
	corpus["seed-bad-magic"] = clone(func(b []byte) { b[0] = 0x7B })
	corpus["seed-lying-length"] = clone(func(b []byte) { b[1], b[2], b[3], b[4] = 0xFF, 0xFF, 0xFF, 0x7F })
	corpus["seed-trailing-payload"] = clone(func(b []byte) { b[1] -= 4 })
	corpus["seed-unknown-kind"] = clone(func(b []byte) { b[6] = 0xEE })
	corpus["seed-trailing-garbage"] = append(append([]byte(nil), hb...), 0xFF, 0xFF, 0xFF)
	corpus["seed-garbage"] = []byte("not a frame at all")

	dir := filepath.Join("testdata", "fuzz", "FuzzEnvelopeDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(corpus), dir)
}
