package wire

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEnvelopeValidate(t *testing.T) {
	hb := HeartbeatEnvelope("blade1", "coordinator", Heartbeat{Host: "blade1", Minute: 3, CPU: 0.5})
	if err := hb.Validate(); err != nil {
		t.Fatalf("valid heartbeat rejected: %v", err)
	}
	cases := []struct {
		name string
		env  *Envelope
		want string
	}{
		{"nil", nil, "nil envelope"},
		{"version", &Envelope{Version: 99, Type: TypeAck, Ack: &ActionAck{}}, "protocol version"},
		{"missing payload", NewEnvelope(TypeHeartbeat, "a", "b"), "without heartbeat"},
		{"missing key", ActionEnvelope("c", "a", ActionRequest{Op: OpStart}), "idempotency key"},
		{"unknown type", &Envelope{Version: Version, Type: "gossip"}, "unknown message type"},
		{"ruleGet no name", RuleGetEnvelope("a", "c", RuleGet{}), "without rule-base name"},
		{"rulePut no name", RulePutEnvelope("a", "c", RulePut{Source: "IF x IS y THEN z IS applicable"}), "without rule-base name"},
		{"rulePut empty", RulePutEnvelope("a", "c", RulePut{Name: "serviceIdle"}), "without source, version or error"},
		{"ruleList no payload", NewEnvelope(TypeRuleList, "a", "c"), "without ruleList payload"},
	}
	for _, c := range cases {
		err := c.env.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestEnvelopeJSONRoundTrip(t *testing.T) {
	env := ActionEnvelope("coordinator", "blade2", ActionRequest{
		Key: "act-7", Op: OpBind, Host: "blade2", Service: "FI",
		InstanceID: "FI-3", DeadlineUnixMS: 12345,
	})
	env.Seq = 42
	buf, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Action.Key != "act-7" || back.Action.Op != OpBind || back.Seq != 42 ||
		back.Action.InstanceID != "FI-3" || back.Action.DeadlineUnixMS != 12345 {
		t.Errorf("round trip mangled envelope: %+v", back)
	}
}

func TestRuleEnvelopeJSONRoundTrip(t *testing.T) {
	env := RulePutEnvelope("admin", "coordinator", RulePut{
		Name: "select/placement", Version: 2, Hash: "deadbeef",
		Source: "IF cpuLoad IS high THEN score IS applicable\n", Activate: true,
	})
	buf, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	p := back.RulePut
	if p.Name != "select/placement" || p.Version != 2 || p.Hash != "deadbeef" ||
		!p.Activate || p.Source != env.RulePut.Source {
		t.Errorf("round trip mangled rulePut: %+v", p)
	}
}

// echoHandler acks actions and probe-acks probes.
func echoHandler(node string) Handler {
	return func(env *Envelope) (*Envelope, error) {
		switch env.Type {
		case TypeAction:
			return AckEnvelope(node, env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
		case TypeProbe:
			reply := NewEnvelope(TypeProbeAck, node, env.From)
			reply.Probe = env.Probe
			return reply, nil
		default:
			return AckEnvelope(node, env.From, ActionAck{OK: true}), nil
		}
	}
}

// transportContract exercises the behavior both transports must share.
func transportContract(t *testing.T, tr Transport) {
	t.Helper()
	if err := tr.Listen("agent", echoHandler("agent")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Listen("agent", echoHandler("agent")); err == nil {
		t.Error("duplicate Listen succeeded")
	}
	ctx := context.Background()

	reply, err := tr.Call(ctx, "agent", ActionEnvelope("c", "agent", ActionRequest{Key: "k1", Op: OpStart, Service: "FI"}))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply == nil || reply.Type != TypeAck || !reply.Ack.OK || reply.Ack.Key != "k1" {
		t.Fatalf("reply = %+v, want OK ack for k1", reply)
	}

	if _, err := tr.Call(ctx, "ghost", ActionEnvelope("c", "ghost", ActionRequest{Key: "k2", Op: OpStop})); err == nil {
		t.Error("Call to unknown node succeeded")
	}

	// Invalid envelopes never reach the peer.
	if _, err := tr.Call(ctx, "agent", &Envelope{Version: 99, Type: TypeAck, Ack: &ActionAck{}}); err == nil {
		t.Error("version-mismatched envelope accepted")
	}

	pr, err := tr.Call(ctx, "agent", ProbeEnvelope("c", "agent", Probe{Host: "agent", Minute: 9}))
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if pr.Type != TypeProbeAck || pr.Probe.Minute != 9 {
		t.Fatalf("probe reply = %+v", pr)
	}
}

func TestLoopbackContract(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	transportContract(t, tr)
}

func TestHTTPContract(t *testing.T) {
	tr := NewHTTP()
	defer tr.Close()
	transportContract(t, tr)
}

func TestHTTPRejectsVersionMismatchOnWire(t *testing.T) {
	tr := NewHTTP()
	defer tr.Close()
	if err := tr.Listen("agent", echoHandler("agent")); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a frame with a bad version and post it raw: the server
	// must reject it before the handler runs.
	raw := NewHTTP()
	defer raw.Close()
	base, _ := tr.Addr("agent")
	raw.Register("agent", base)
	env := ActionEnvelope("c", "agent", ActionRequest{Key: "k", Op: OpStart})
	env.Version = 2
	_, err := rawPost(base, env)
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("bad-version frame not rejected: %v", err)
	}
}

func TestHTTPCallTimeout(t *testing.T) {
	tr := NewHTTP()
	defer tr.Close()
	block := make(chan struct{})
	defer close(block)
	if err := tr.Listen("slow", func(env *Envelope) (*Envelope, error) {
		<-block
		return AckEnvelope("slow", env.From, ActionAck{OK: true}), nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := tr.Call(ctx, "slow", ActionEnvelope("c", "slow", ActionRequest{Key: "k", Op: OpStart}))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
