package wire

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"autoglobe/internal/obs"
)

// Loopback is the in-memory transport: delivery is a synchronous
// function call in the caller's goroutine, so tests are deterministic,
// and an injectable fault model — latency, message drops, lost replies,
// partitions — turns it into a miniature unreliable network. It is the
// reference transport: the distributed simulator scenario must produce
// byte-identical action logs over Loopback and over HTTP.
type Loopback struct {
	mu       sync.Mutex
	handlers map[string]Handler
	closed   bool

	// fault state, all guarded by mu
	dropNext      map[string]int // node -> calls to swallow before the handler runs
	dropReplyNext map[string]int // node -> replies to swallow after the handler ran
	dupNext       map[string]int // node -> deliveries to run through the handler twice
	holdNext      map[string]int // node -> deliveries to park for later release
	held          map[string][]*Envelope
	latency       map[string]time.Duration
	isolated      map[string]bool
	dropRate      float64
	rng           *rand.Rand

	calls   int
	dropped int

	codec  Codec
	intern *Interner

	metrics *wireMetrics
}

// NewLoopback returns an empty loopback network.
func NewLoopback() *Loopback {
	return &Loopback{
		handlers:      make(map[string]Handler),
		dropNext:      make(map[string]int),
		dropReplyNext: make(map[string]int),
		dupNext:       make(map[string]int),
		holdNext:      make(map[string]int),
		held:          make(map[string][]*Envelope),
		latency:       make(map[string]time.Duration),
		isolated:      make(map[string]bool),
	}
}

// SetCodec selects the envelope encoding. With CodecBinary every call
// round-trips request and reply through the binary frame format — the
// handler receives a decoded copy, exactly as it would over a socket —
// so the loopback exercises the codec end to end while staying
// deterministic. The default CodecJSON passes envelopes by pointer
// (the original in-memory behaviour).
func (l *Loopback) SetCodec(c Codec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.codec = c
	if c == CodecBinary && l.intern == nil {
		l.intern = NewInterner()
	}
}

// Instrument attaches an obs registry: every subsequent Call is counted
// by message type, failures by cause, and latency into a histogram. A
// nil registry leaves the transport uninstrumented.
func (l *Loopback) Instrument(r *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = newWireMetrics(r, "loopback")
}

// Listen implements Transport.
func (l *Loopback) Listen(node string, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, dup := l.handlers[node]; dup {
		return errDuplicateListener(node)
	}
	l.handlers[node] = h
	return nil
}

// Unlisten removes a node's handler: subsequent calls to it fail with
// ErrNoRoute, exactly like a crashed process whose port went away. The
// node may Listen again later (a restart). Held messages for the node
// are discarded — the process they were addressed to is gone.
func (l *Loopback) Unlisten(node string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, node)
	for _, env := range l.held[node] {
		ReleaseEnvelope(env)
	}
	delete(l.held, node)
	return nil
}

func errDuplicateListener(node string) error {
	return &listenerError{node}
}

type listenerError struct{ node string }

func (e *listenerError) Error() string { return "wire: node " + e.node + " already listening" }

// Call implements Transport. Faults are evaluated in order: isolation,
// scheduled drops, random drops, latency, handler, scheduled reply
// drops. A swallowed message or reply surfaces as ErrTimeout, exactly
// what a caller waiting for an ack over a real network would see.
func (l *Loopback) Call(ctx context.Context, node string, env *Envelope) (*Envelope, error) {
	reply, err := l.call(ctx, node, env)
	if err != nil {
		l.mu.Lock()
		m := l.metrics
		l.mu.Unlock()
		m.fail(err)
	}
	return reply, err
}

func (l *Loopback) call(ctx context.Context, node string, env *Envelope) (*Envelope, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	l.calls++
	m := l.metrics
	m.call(env.Type)
	start := time.Now()
	defer m.observe(start)
	h, ok := l.handlers[node]
	if !ok {
		l.mu.Unlock()
		return nil, ErrNoRoute
	}
	if l.isolated[node] || l.isolated[env.From] {
		l.dropped++
		l.mu.Unlock()
		return nil, ErrTimeout
	}
	if l.dropNext[node] > 0 {
		l.dropNext[node]--
		l.dropped++
		l.mu.Unlock()
		return nil, ErrTimeout
	}
	if l.dropRate > 0 && l.rng != nil && l.rng.Float64() < l.dropRate {
		l.dropped++
		l.mu.Unlock()
		return nil, ErrTimeout
	}
	if l.holdNext[node] > 0 {
		// The message is parked, not lost: DeliverHeld releases it to
		// the handler later (a delayed delivery, e.g. after a partition
		// heals). The caller meanwhile sees the same thing it would for
		// a loss — no ack within the deadline — and retries. The park
		// keeps a deep clone: the caller may reuse its envelope (the
		// heartbeat reporter does) long before the held copy lands.
		l.holdNext[node]--
		l.held[node] = append(l.held[node], CloneEnvelope(env))
		l.dropped++
		l.mu.Unlock()
		return nil, ErrTimeout
	}
	dup := false
	if l.dupNext[node] > 0 {
		l.dupNext[node]--
		dup = true
	}
	lat := l.latency[node]
	codec, intern := l.codec, l.intern
	l.mu.Unlock()

	if lat > 0 {
		select {
		case <-time.After(lat):
		case <-ctx.Done():
			return nil, ErrTimeout
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, ErrTimeout
	}

	if dup {
		// Duplicate delivery: the network hands the same message to the
		// handler twice (a replayed packet). The first reply vanishes;
		// the caller sees only the second — which an idempotent receiver
		// answers from its applied cache without re-executing.
		if first, ferr := l.deliver(h, env, codec, intern); ferr == nil && first != nil {
			ReleaseEnvelope(first) // swallowed, like a reply lost in transit
		}
	}
	reply, err := l.deliver(h, env, codec, intern)
	if err != nil {
		return nil, err
	}
	if reply != nil {
		if err := reply.Validate(); err != nil {
			ReleaseEnvelope(reply)
			return nil, err
		}
	}

	l.mu.Lock()
	if l.dropReplyNext[node] > 0 {
		l.dropReplyNext[node]--
		l.dropped++
		l.mu.Unlock()
		ReleaseEnvelope(reply)
		return nil, ErrTimeout
	}
	l.mu.Unlock()
	return reply, nil
}

// deliver hands env to the handler. With the binary codec both the
// request and the reply round-trip through the frame format — the
// handler sees a decoded copy, exactly as it would over a socket, and
// the caller receives a decoded reply it must ReleaseEnvelope.
func (l *Loopback) deliver(h Handler, env *Envelope, codec Codec, intern *Interner) (*Envelope, error) {
	if codec != CodecBinary {
		return h(env)
	}
	buf := AcquireFrame()
	b, err := AppendEnvelope((*buf)[:0], env)
	if err != nil {
		ReleaseFrame(buf)
		return nil, err
	}
	*buf = b
	req, _, err := DecodeEnvelope(*buf, intern)
	ReleaseFrame(buf)
	if err != nil {
		return nil, err
	}
	reply, herr := h(req)
	ReleaseEnvelope(req)
	if herr != nil {
		ReleaseEnvelope(reply)
		return nil, herr
	}
	if reply == nil {
		return nil, nil
	}
	rbuf := AcquireFrame()
	rb, rerr := AppendEnvelope((*rbuf)[:0], reply)
	ReleaseEnvelope(reply)
	if rerr != nil {
		ReleaseFrame(rbuf)
		return nil, rerr
	}
	*rbuf = rb
	out, _, err := DecodeEnvelope(*rbuf, intern)
	ReleaseFrame(rbuf)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close implements Transport.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// DropNext swallows the next n messages addressed to node before they
// reach its handler (lost requests).
func (l *Loopback) DropNext(node string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropNext[node] += n
}

// DropReplyNext lets the next n messages to node execute but swallows
// their replies (lost acks) — the scenario idempotency keys exist for:
// the caller retries an operation the agent already applied.
func (l *Loopback) DropReplyNext(node string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropReplyNext[node] += n
}

// DuplicateNext makes the next n messages to node run through its
// handler twice — the replayed-packet fault. The first invocation's
// reply is swallowed; the caller receives the second, which an
// idempotent receiver serves from its applied cache (the action
// executes once, is acked twice).
func (l *Loopback) DuplicateNext(node string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dupNext[node] += n
}

// HoldNext parks the next n messages addressed to node instead of
// delivering them. The sender sees a timeout (and typically retries);
// the parked originals stay queued until DeliverHeld releases them —
// modelling messages delayed in a partitioned or congested link that
// arrive long after the sender gave up.
func (l *Loopback) HoldNext(node string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.holdNext[node] += n
}

// DeliverHeld releases every message parked for node to its handler, in
// arrival order, discarding the replies (the original callers are long
// gone). Combined with Heal it models delayed delivery after a
// partition: the stale in-flight traffic finally lands, and only the
// receiver's idempotency and epoch guards keep it harmless. Returns how
// many messages were delivered.
func (l *Loopback) DeliverHeld(node string) int {
	l.mu.Lock()
	envs := l.held[node]
	delete(l.held, node)
	h, ok := l.handlers[node]
	codec, intern := l.codec, l.intern
	l.mu.Unlock()
	if !ok {
		return 0
	}
	for _, env := range envs {
		reply, err := l.deliver(h, env, codec, intern)
		_ = err // stale traffic: replies and errors vanish
		ReleaseEnvelope(reply)
	}
	return len(envs)
}

// Held reports how many messages are currently parked for node.
func (l *Loopback) Held(node string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held[node])
}

// SetLatency delays every delivery to node; a call whose context
// expires during the delay times out.
func (l *Loopback) SetLatency(node string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latency[node] = d
}

// Isolate partitions a node from the network: every message to or from
// it vanishes until Heal.
func (l *Loopback) Isolate(node string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.isolated[node] = true
}

// Heal reconnects an isolated node.
func (l *Loopback) Heal(node string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.isolated, node)
}

// SetDropRate makes a fraction of deliveries vanish at random, driven
// by the given seed so a failing run replays exactly.
func (l *Loopback) SetDropRate(rate float64, seed uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropRate = rate
	l.rng = rand.New(rand.NewSource(int64(seed)))
}

// Stats reports delivered-call and dropped-message counters.
func (l *Loopback) Stats() (calls, dropped int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls, l.dropped
}
