package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Codec selects the envelope encoding a transport uses on the wire.
// JSON is the readable, debuggable default and the compatibility
// fallback; Binary is the length-prefixed zero-copy format the ingest
// fast path uses at landscape scale. Both encode exactly the same
// Envelope — the simulator's byte-identical parity guarantee holds
// under either, because parity is asserted on the decoded protocol
// events, and the codec round-trips losslessly (FuzzEnvelopeDecode
// checks re-encode/re-decode identity).
type Codec uint8

const (
	// CodecJSON is protocol version 1's original encoding: one JSON
	// object per envelope. Always accepted — it is the negotiation
	// fallback.
	CodecJSON Codec = iota
	// CodecBinary is the length-prefixed binary frame format (see
	// DESIGN.md "Ingest plane"): a magic byte, a little-endian uint32
	// payload length, then a compact field encoding with uvarint
	// lengths. Heartbeats and acks — the per-minute hot kinds — cost
	// zero heap allocations to encode and decode (pooled frames,
	// pooled envelopes, interned identifier strings).
	CodecBinary
)

// ParseCodec maps a flag value ("json", "binary") to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecJSON, fmt.Errorf("wire: unknown codec %q (want json or binary)", s)
	}
}

// String implements fmt.Stringer.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// BinaryContentType is the MIME type the HTTP transport uses for
// binary-framed envelopes; requests and responses carrying it are
// decoded with DecodeEnvelope, anything else falls back to JSON. An
// old coordinator that has never heard of the binary codec answers
// a binary POST with an error, and the operator pins -codec=json —
// negotiation is by content type, not by handshake.
const BinaryContentType = "application/x-autoglobe-wire"

// JSONContentType is the MIME type of JSON-framed envelopes.
const JSONContentType = "application/json"

// frameMagic is the first byte of every binary frame. It can never
// open a JSON document ('{' is 0x7B), so a receiver can sniff the
// codec from the first byte if the content type is missing.
const frameMagic = 0xA7

// maxFrame bounds the payload length a decoder will accept, matching
// the HTTP transport's request-body cap. A lying length prefix larger
// than this is rejected before any allocation.
const maxFrame = 4 << 20

// binary payload kind bytes (follow the version byte).
const (
	kindHeartbeat byte = 1 + iota
	kindAction
	kindAck
	kindProbe
	kindProbeAck
	kindHello
	kindRuleGet
	kindRulePut
	kindRuleList
	kindLease
	kindLeaseAck
)

func kindOf(t MsgType) (byte, bool) {
	switch t {
	case TypeHeartbeat:
		return kindHeartbeat, true
	case TypeAction:
		return kindAction, true
	case TypeAck:
		return kindAck, true
	case TypeProbe:
		return kindProbe, true
	case TypeProbeAck:
		return kindProbeAck, true
	case TypeHello:
		return kindHello, true
	case TypeRuleGet:
		return kindRuleGet, true
	case TypeRulePut:
		return kindRulePut, true
	case TypeRuleList:
		return kindRuleList, true
	case TypeLease:
		return kindLease, true
	case TypeLeaseAck:
		return kindLeaseAck, true
	}
	return 0, false
}

func typeOf(k byte) (MsgType, bool) {
	switch k {
	case kindHeartbeat:
		return TypeHeartbeat, true
	case kindAction:
		return TypeAction, true
	case kindAck:
		return TypeAck, true
	case kindProbe:
		return TypeProbe, true
	case kindProbeAck:
		return TypeProbeAck, true
	case kindHello:
		return TypeHello, true
	case kindRuleGet:
		return TypeRuleGet, true
	case kindRulePut:
		return TypeRulePut, true
	case kindRuleList:
		return TypeRuleList, true
	case kindLease:
		return TypeLease, true
	case kindLeaseAck:
		return TypeLeaseAck, true
	}
	return "", false
}

// ---------------------------------------------------------------------
// Frame buffer pool
// ---------------------------------------------------------------------

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// AcquireFrame returns a pooled byte slice (length 0) for encoding a
// frame into. Return it with ReleaseFrame when the bytes have been
// consumed.
func AcquireFrame() *[]byte {
	return framePool.Get().(*[]byte)
}

// ReleaseFrame returns a frame buffer to the pool.
func ReleaseFrame(b *[]byte) {
	if b == nil || cap(*b) > maxFrame {
		return // don't cache giants
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// ---------------------------------------------------------------------
// Envelope pool
// ---------------------------------------------------------------------

// envBox carries an Envelope together with inline payload storage so a
// decoded hot-path message (heartbeat, ack, probe …) costs zero heap
// allocations: the envelope's payload pointer aims at the box's own
// field, and the heartbeat's Instances slice is reused across decodes.
type envBox struct {
	env   Envelope
	hb    Heartbeat
	act   ActionRequest
	ack   ActionAck
	probe Probe
	hello Hello
	// Rule admin messages are cold-path; their payloads ride in the box
	// for uniformity, not for allocation savings (sources and catalog
	// entries allocate fresh strings/slices anyway).
	rget  RuleGet
	rput  RulePut
	rlist RuleList
	lease Lease
}

var envPool = sync.Pool{New: func() any { return new(envBox) }}

func acquireBox() *envBox {
	bx := envPool.Get().(*envBox)
	insts := bx.hb.Instances[:0]
	*bx = envBox{}
	bx.hb.Instances = insts
	bx.env.box = bx
	return bx
}

// ReleaseEnvelope returns a pooled envelope (one produced by
// DecodeEnvelope or an Acquire* constructor) to the pool. Envelopes
// built by the plain constructors are untracked and the call is a
// no-op, so transports can release every reply unconditionally.
// Callers must not retain any pointer into the envelope (payload
// structs, the heartbeat's Instances backing array) past the release;
// strings remain valid (they are immutable and never recycled).
func ReleaseEnvelope(e *Envelope) {
	if e == nil || e.box == nil {
		return
	}
	bx := e.box
	e.box = nil
	envPool.Put(bx)
}

// AcquireAckEnvelope frames an action ack in a pooled envelope. The
// receiver of the reply releases it (transports do this after
// serialising; in-process callers after copying the ack).
func AcquireAckEnvelope(from, to string, ack ActionAck) *Envelope {
	bx := acquireBox()
	bx.env.Version = Version
	bx.env.Type = TypeAck
	bx.env.From = from
	bx.env.To = to
	bx.ack = ack
	bx.env.Ack = &bx.ack
	return &bx.env
}

// AcquireActionEnvelope frames an action request in a pooled envelope —
// the dispatcher's sending half of the zero-allocation action path (the
// agent's AcquireAckEnvelope is the answering half). The caller releases
// it once the transport call returns: transports never retain a request
// past the call (the loopback deep-clones held messages, the HTTP client
// serialises before returning), so the box can be recycled immediately.
func AcquireActionEnvelope(from, to string, req ActionRequest) *Envelope {
	bx := acquireBox()
	bx.env.Version = Version
	bx.env.Type = TypeAction
	bx.env.From = from
	bx.env.To = to
	bx.act = req
	bx.env.Action = &bx.act
	return &bx.env
}

// AcquireProbeAckEnvelope frames a probe ack in a pooled envelope.
func AcquireProbeAckEnvelope(from, to string, p Probe) *Envelope {
	bx := acquireBox()
	bx.env.Version = Version
	bx.env.Type = TypeProbeAck
	bx.env.From = from
	bx.env.To = to
	bx.probe = p
	bx.env.Probe = &bx.probe
	return &bx.env
}

// AcquireLeaseAckEnvelope frames a lease-beacon reply in a pooled
// envelope — every standby and agent answers the leader's per-minute
// beacon, so the reply rides the pooled path like probe acks do.
func AcquireLeaseAckEnvelope(from, to string, l Lease) *Envelope {
	bx := acquireBox()
	bx.env.Version = Version
	bx.env.Type = TypeLeaseAck
	bx.env.From = from
	bx.env.To = to
	bx.lease = l
	bx.env.Lease = &bx.lease
	return &bx.env
}

// ---------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------

// Interner deduplicates the small, recurring identifier vocabulary of
// a landscape (host names, service names, instance IDs, node names) so
// steady-state decoding performs zero string allocations: looking up a
// []byte key in a map[string]string does not allocate, and a hit
// returns the one canonical copy. It is safe for concurrent use.
type Interner struct {
	mu sync.Mutex
	m  map[string]string
}

// maxInternerEntries caps the table; an adversarial stream of unique
// identifiers clears it rather than growing without bound.
const maxInternerEntries = 8192

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 256)}
}

// Intern returns the canonical string for b.
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	in.mu.Lock()
	s, ok := in.m[string(b)] // compiler-recognised non-allocating lookup
	if !ok {
		if len(in.m) >= maxInternerEntries {
			in.m = make(map[string]string, 256)
		}
		s = string(b)
		in.m[s] = s
	}
	in.mu.Unlock()
	return s
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendEnvelope encodes e as one binary frame appended to dst and
// returns the extended slice. The frame is [magic][uint32 LE payload
// length][payload]; the length is back-patched after encoding, so no
// scratch buffer is needed.
func AppendEnvelope(dst []byte, e *Envelope) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	kind, ok := kindOf(e.Type)
	if !ok {
		return dst, fmt.Errorf("wire: binary codec cannot frame type %q", e.Type)
	}
	dst = append(dst, frameMagic, 0, 0, 0, 0) // length back-patched below
	lenAt := len(dst) - 4
	start := len(dst)

	dst = append(dst, byte(e.Version), kind)
	dst = appendString(dst, e.From)
	dst = appendString(dst, e.To)
	dst = appendUvarint(dst, e.Seq)
	dst = appendUvarint(dst, e.Epoch)

	switch e.Type {
	case TypeHeartbeat:
		hb := e.Heartbeat
		dst = appendString(dst, hb.Host)
		dst = appendVarint(dst, int64(hb.Minute))
		dst = appendFloat(dst, hb.CPU)
		dst = appendFloat(dst, hb.Mem)
		dst = appendUvarint(dst, uint64(len(hb.Instances)))
		for i := range hb.Instances {
			s := &hb.Instances[i]
			dst = appendString(dst, s.ID)
			dst = appendString(dst, s.Service)
			dst = appendFloat(dst, s.Load)
		}
	case TypeAction:
		a := e.Action
		dst = appendString(dst, a.Key)
		dst = appendString(dst, string(a.Op))
		dst = appendString(dst, a.Host)
		dst = appendString(dst, a.Service)
		dst = appendString(dst, a.InstanceID)
		dst = appendVarint(dst, int64(a.Delta))
		dst = appendVarint(dst, a.DeadlineUnixMS)
	case TypeAck:
		a := e.Ack
		dst = appendString(dst, a.Key)
		var flags byte
		if a.OK {
			flags |= 1
		}
		if a.Duplicate {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = appendString(dst, a.Error)
	case TypeProbe, TypeProbeAck:
		p := e.Probe
		dst = appendString(dst, p.Host)
		dst = appendVarint(dst, int64(p.Minute))
	case TypeHello:
		h := e.Hello
		dst = appendString(dst, h.Host)
		dst = appendFloat(dst, h.PerformanceIndex)
		dst = appendVarint(dst, int64(h.MemoryMB))
		dst = appendString(dst, h.Addr)
	case TypeRuleGet:
		g := e.RuleGet
		dst = appendString(dst, g.Name)
		dst = appendVarint(dst, int64(g.Version))
	case TypeRulePut:
		p := e.RulePut
		dst = appendString(dst, p.Name)
		dst = appendVarint(dst, int64(p.Version))
		dst = appendString(dst, p.Hash)
		dst = appendString(dst, p.Source)
		var flags byte
		if p.Activate {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = appendString(dst, p.Error)
	case TypeRuleList:
		l := e.RuleList
		dst = appendUvarint(dst, uint64(len(l.Entries)))
		for i := range l.Entries {
			r := &l.Entries[i]
			dst = appendString(dst, r.Name)
			dst = appendVarint(dst, int64(r.Version))
			dst = appendString(dst, r.Hash)
			var flags byte
			if r.Active {
				flags |= 1
			}
			dst = append(dst, flags)
			dst = appendVarint(dst, int64(r.Rules))
		}
		dst = appendString(dst, l.Error)
	case TypeLease, TypeLeaseAck:
		l := e.Lease
		dst = appendString(dst, l.Leader)
		dst = appendUvarint(dst, l.Epoch)
		dst = appendVarint(dst, int64(l.Minute))
	}

	payload := len(dst) - start
	if payload > maxFrame {
		return dst[:lenAt-1], fmt.Errorf("wire: frame payload %d exceeds %d-byte cap", payload, maxFrame)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(payload))
	return dst, nil
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

type decoder struct {
	b  []byte
	in *Interner
}

var errShortFrame = fmt.Errorf("wire: truncated binary frame")

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, errShortFrame
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, errShortFrame
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, errShortFrame
	}
	s := d.b[:n]
	d.b = d.b[n:]
	return s, nil
}

// str decodes a length-prefixed string, allocating a fresh copy (for
// unique, unbounded values: idempotency keys, error texts, addresses).
func (d *decoder) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// ident decodes a length-prefixed identifier through the interner (for
// the recurring vocabulary: hosts, services, instance IDs, nodes).
func (d *decoder) ident() (string, error) {
	b, err := d.bytes()
	if err != nil {
		return "", err
	}
	return d.in.Intern(b), nil
}

func (d *decoder) float() (float64, error) {
	if len(d.b) < 8 {
		return 0, errShortFrame
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}

func (d *decoder) byteVal() (byte, error) {
	if len(d.b) < 1 {
		return 0, errShortFrame
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

// DecodeEnvelope decodes one binary frame from the front of b and
// returns the envelope, the number of bytes consumed, and any error.
// The returned envelope is pooled — the caller must ReleaseEnvelope it
// (and must not retain payload pointers past the release). A nil
// interner falls back to plain string allocation. Malformed input —
// truncated frames, a length prefix that lies about the payload size,
// an unknown kind, trailing payload bytes — returns an error, never a
// panic (FuzzEnvelopeDecode enforces this).
func DecodeEnvelope(b []byte, in *Interner) (*Envelope, int, error) {
	if len(b) < 5 {
		return nil, 0, errShortFrame
	}
	if b[0] != frameMagic {
		return nil, 0, fmt.Errorf("wire: bad frame magic 0x%02X", b[0])
	}
	n := binary.LittleEndian.Uint32(b[1:5])
	if n > maxFrame {
		return nil, 0, fmt.Errorf("wire: frame length %d exceeds %d-byte cap", n, maxFrame)
	}
	if uint64(len(b)-5) < uint64(n) {
		return nil, 0, errShortFrame
	}
	consumed := 5 + int(n)
	d := decoder{b: b[5:consumed], in: in}

	if len(d.b) < 2 {
		return nil, 0, errShortFrame
	}
	version, kind := d.b[0], d.b[1]
	d.b = d.b[2:]
	if int(version) != Version {
		return nil, 0, fmt.Errorf("wire: protocol version %d, want %d", version, Version)
	}
	t, ok := typeOf(kind)
	if !ok {
		return nil, 0, fmt.Errorf("wire: unknown binary kind %d", kind)
	}

	bx := acquireBox()
	e := &bx.env
	e.Version = int(version)
	e.Type = t
	var err error
	if e.From, err = d.ident(); err == nil {
		if e.To, err = d.ident(); err == nil {
			if e.Seq, err = d.uvarint(); err == nil {
				e.Epoch, err = d.uvarint()
			}
		}
	}
	if err != nil {
		ReleaseEnvelope(e)
		return nil, 0, err
	}

	switch t {
	case TypeHeartbeat:
		hb := &bx.hb
		e.Heartbeat = hb
		var minute int64
		var count uint64
		if hb.Host, err = d.ident(); err != nil {
			break
		}
		if minute, err = d.varint(); err != nil {
			break
		}
		hb.Minute = int(minute)
		if hb.CPU, err = d.float(); err != nil {
			break
		}
		if hb.Mem, err = d.float(); err != nil {
			break
		}
		if count, err = d.uvarint(); err != nil {
			break
		}
		if count > uint64(len(d.b)) { // each sample needs ≥ 1 byte
			err = errShortFrame
			break
		}
		for i := uint64(0); i < count; i++ {
			var s InstanceSample
			if s.ID, err = d.ident(); err != nil {
				break
			}
			if s.Service, err = d.ident(); err != nil {
				break
			}
			if s.Load, err = d.float(); err != nil {
				break
			}
			hb.Instances = append(hb.Instances, s)
		}
	case TypeAction:
		a := &bx.act
		e.Action = a
		var op string
		var delta int64
		if a.Key, err = d.str(); err != nil {
			break
		}
		if op, err = d.ident(); err != nil {
			break
		}
		a.Op = Op(op)
		if a.Host, err = d.ident(); err != nil {
			break
		}
		if a.Service, err = d.ident(); err != nil {
			break
		}
		if a.InstanceID, err = d.ident(); err != nil {
			break
		}
		if delta, err = d.varint(); err != nil {
			break
		}
		a.Delta = int(delta)
		a.DeadlineUnixMS, err = d.varint()
	case TypeAck:
		a := &bx.ack
		e.Ack = a
		var flags byte
		if a.Key, err = d.str(); err != nil {
			break
		}
		if flags, err = d.byteVal(); err != nil {
			break
		}
		a.OK = flags&1 != 0
		a.Duplicate = flags&2 != 0
		a.Error, err = d.str()
	case TypeProbe, TypeProbeAck:
		p := &bx.probe
		e.Probe = p
		var minute int64
		if p.Host, err = d.ident(); err != nil {
			break
		}
		if minute, err = d.varint(); err != nil {
			break
		}
		p.Minute = int(minute)
	case TypeHello:
		h := &bx.hello
		e.Hello = h
		var memMB int64
		if h.Host, err = d.ident(); err != nil {
			break
		}
		if h.PerformanceIndex, err = d.float(); err != nil {
			break
		}
		if memMB, err = d.varint(); err != nil {
			break
		}
		h.MemoryMB = int(memMB)
		h.Addr, err = d.str()
	case TypeRuleGet:
		g := &bx.rget
		e.RuleGet = g
		var version int64
		if g.Name, err = d.ident(); err != nil {
			break
		}
		if version, err = d.varint(); err != nil {
			break
		}
		g.Version = int(version)
	case TypeRulePut:
		p := &bx.rput
		e.RulePut = p
		var version int64
		var flags byte
		if p.Name, err = d.ident(); err != nil {
			break
		}
		if version, err = d.varint(); err != nil {
			break
		}
		p.Version = int(version)
		if p.Hash, err = d.str(); err != nil {
			break
		}
		if p.Source, err = d.str(); err != nil {
			break
		}
		if flags, err = d.byteVal(); err != nil {
			break
		}
		p.Activate = flags&1 != 0
		p.Error, err = d.str()
	case TypeRuleList:
		l := &bx.rlist
		e.RuleList = l
		var count uint64
		if count, err = d.uvarint(); err != nil {
			break
		}
		if count > uint64(len(d.b)) { // each entry needs ≥ 1 byte
			err = errShortFrame
			break
		}
		for i := uint64(0); i < count; i++ {
			var r RuleInfo
			var version, rules int64
			var flags byte
			if r.Name, err = d.ident(); err != nil {
				break
			}
			if version, err = d.varint(); err != nil {
				break
			}
			r.Version = int(version)
			if r.Hash, err = d.str(); err != nil {
				break
			}
			if flags, err = d.byteVal(); err != nil {
				break
			}
			r.Active = flags&1 != 0
			if rules, err = d.varint(); err != nil {
				break
			}
			r.Rules = int(rules)
			l.Entries = append(l.Entries, r)
		}
		if err != nil {
			break
		}
		l.Error, err = d.str()
	case TypeLease, TypeLeaseAck:
		l := &bx.lease
		e.Lease = l
		var minute int64
		if l.Leader, err = d.ident(); err != nil {
			break
		}
		if l.Epoch, err = d.uvarint(); err != nil {
			break
		}
		if minute, err = d.varint(); err != nil {
			break
		}
		l.Minute = int(minute)
	}
	if err != nil {
		ReleaseEnvelope(e)
		return nil, 0, err
	}
	if len(d.b) != 0 {
		ReleaseEnvelope(e)
		return nil, 0, fmt.Errorf("wire: %d trailing bytes after %s payload", len(d.b), t)
	}
	if err := e.Validate(); err != nil {
		ReleaseEnvelope(e)
		return nil, 0, err
	}
	return e, consumed, nil
}

// CloneEnvelope deep-copies an envelope into freshly allocated memory,
// detached from any pool. Transports use it when they must retain a
// message past the caller's release (the loopback's HoldNext parking).
func CloneEnvelope(e *Envelope) *Envelope {
	if e == nil {
		return nil
	}
	c := *e
	c.box = nil
	if e.Heartbeat != nil {
		hb := *e.Heartbeat
		hb.Instances = append([]InstanceSample(nil), e.Heartbeat.Instances...)
		c.Heartbeat = &hb
	}
	if e.Action != nil {
		a := *e.Action
		c.Action = &a
	}
	if e.Ack != nil {
		a := *e.Ack
		c.Ack = &a
	}
	if e.Probe != nil {
		p := *e.Probe
		c.Probe = &p
	}
	if e.Hello != nil {
		h := *e.Hello
		c.Hello = &h
	}
	if e.RuleGet != nil {
		g := *e.RuleGet
		c.RuleGet = &g
	}
	if e.RulePut != nil {
		p := *e.RulePut
		c.RulePut = &p
	}
	if e.RuleList != nil {
		l := *e.RuleList
		l.Entries = append([]RuleInfo(nil), e.RuleList.Entries...)
		c.RuleList = &l
	}
	if e.Lease != nil {
		l := *e.Lease
		c.Lease = &l
	}
	return &c
}
