package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"autoglobe/internal/obs"
)

// TestServerDropsSlowClient pins the slow-loris hardening: a client
// that opens a connection, sends a partial request header and then
// stalls must be disconnected by ReadHeaderTimeout — while well-behaved
// calls keep flowing on the same listener.
func TestServerDropsSlowClient(t *testing.T) {
	tr := NewHTTP()
	tr.ReadHeaderTimeout = 150 * time.Millisecond
	tr.ReadTimeout = 300 * time.Millisecond
	defer tr.Close()
	base, err := tr.ListenOn("agent", "127.0.0.1:0", echoHandler("agent"))
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Partial header, then silence: never send the terminating CRLF.
	if _, err := io.WriteString(conn, "POST "+WirePath+" HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}

	// A normal call through the same listener succeeds while the
	// slow-loris connection is pending.
	if _, err := tr.Call(context.Background(), "agent",
		ActionEnvelope("c", "agent", ActionRequest{Key: "k1", Op: OpStart, Service: "FI"})); err != nil {
		t.Fatalf("healthy call failed alongside a stalled client: %v", err)
	}

	// The server must hang up on the stalled connection within a couple
	// of header timeouts, not hold it open indefinitely. (It may write a
	// 408 before closing; keep reading until the close.)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 512)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue
		}
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("server kept the stalled connection open past ReadHeaderTimeout")
		}
		// EOF or connection reset: the server dropped us — hardening works.
		return
	}
}

// TestBodyReadDeadlineIsTimeout pins the Call error mapping on both
// transports: a context deadline that expires *after* the response
// headers arrive but before the body completes must surface as
// ErrTimeout, exactly like a deadline expiring during connect.
func TestBodyReadDeadlineIsTimeout(t *testing.T) {
	t.Run("http", func(t *testing.T) {
		// A server that sends headers immediately, then stalls mid-body.
		stall := make(chan struct{})
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"v":1,`)
			w.(http.Flusher).Flush()
			<-stall
		}))
		defer srv.Close()
		// LIFO: unblock the handler before srv.Close waits for it.
		defer close(stall)

		tr := NewHTTP()
		defer tr.Close()
		tr.Register("slow", srv.URL)
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_, err := tr.Call(ctx, "slow", ActionEnvelope("c", "slow", ActionRequest{Key: "k", Op: OpStart}))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("mid-body deadline expiry: err = %v, want ErrTimeout", err)
		}
	})

	t.Run("loopback", func(t *testing.T) {
		tr := NewLoopback()
		defer tr.Close()
		if err := tr.Listen("slow", echoHandler("slow")); err != nil {
			t.Fatal(err)
		}
		tr.SetLatency("slow", 500*time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := tr.Call(ctx, "slow", ActionEnvelope("c", "slow", ActionRequest{Key: "k", Op: OpStart}))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("deadline expiry during delivery: err = %v, want ErrTimeout", err)
		}
	})
}

// TestMountServesSidecarHandlers verifies obs endpoints can ride on the
// wire listener: handlers mounted before ListenOn are served next to
// WirePath, and WirePath itself cannot be shadowed.
func TestMountServesSidecarHandlers(t *testing.T) {
	tr := NewHTTP()
	defer tr.Close()
	tr.Mount("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	tr.Mount(WirePath, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("WirePath was shadowed by Mount")
	}))
	base, err := tr.ListenOn("agent", "127.0.0.1:0", echoHandler("agent"))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("mounted handler: status %d body %q", resp.StatusCode, body)
	}
	// The wire route still works.
	if _, err := tr.Call(context.Background(), "agent",
		ActionEnvelope("c", "agent", ActionRequest{Key: "k1", Op: OpStart, Service: "FI"})); err != nil {
		t.Fatalf("wire call after Mount: %v", err)
	}
}

// TestTransportInstrumentation exercises the metric hooks on both
// transports: calls by type, failures by cause, latency observations,
// and (HTTP only) envelope bytes.
func TestTransportInstrumentation(t *testing.T) {
	t.Run("loopback", func(t *testing.T) {
		r := obs.NewRegistry()
		tr := NewLoopback()
		defer tr.Close()
		tr.Instrument(r)
		if err := tr.Listen("agent", echoHandler("agent")); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			if _, err := tr.Call(ctx, "agent", HeartbeatEnvelope("h1", "agent", Heartbeat{Host: "h1", Minute: i})); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Call(ctx, "ghost", ActionEnvelope("c", "ghost", ActionRequest{Key: "k", Op: OpStop})); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("err = %v, want ErrNoRoute", err)
		}
		tr.DropNext("agent", 1)
		if _, err := tr.Call(ctx, "agent", ActionEnvelope("c", "agent", ActionRequest{Key: "k2", Op: OpStart, Service: "FI"})); !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}

		snap := r.Snapshot()
		for key, want := range map[string]float64{
			// Labels render sorted by key; failed attempts still count
			// as calls (the ghost action and the dropped action).
			`autoglobe_wire_calls_total{transport="loopback",type="heartbeat"}`: 3,
			`autoglobe_wire_calls_total{transport="loopback",type="action"}`:    2,
			`autoglobe_wire_errors_total{cause="noRoute",transport="loopback"}`: 1,
			`autoglobe_wire_errors_total{cause="timeout",transport="loopback"}`: 1,
			`autoglobe_wire_call_seconds_count{transport="loopback"}`:           5,
		} {
			if snap[key] != want {
				t.Errorf("snapshot[%s] = %v, want %v", key, snap[key], want)
			}
		}
	})

	t.Run("http", func(t *testing.T) {
		r := obs.NewRegistry()
		tr := NewHTTP()
		defer tr.Close()
		tr.Instrument(r)
		if err := tr.Listen("agent", echoHandler("agent")); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Call(context.Background(), "agent",
			ActionEnvelope("c", "agent", ActionRequest{Key: "k1", Op: OpStart, Service: "FI"})); err != nil {
			t.Fatal(err)
		}
		snap := r.Snapshot()
		if got := snap[`autoglobe_wire_calls_total{transport="http",type="action"}`]; got != 1 {
			t.Errorf("action calls = %v, want 1", got)
		}
		if got := snap[`autoglobe_wire_bytes_total{direction="sent",transport="http"}`]; got <= 0 {
			t.Errorf("sent bytes = %v, want > 0", got)
		}
		if got := snap[`autoglobe_wire_bytes_total{direction="received",transport="http"}`]; got <= 0 {
			t.Errorf("received bytes = %v, want > 0", got)
		}
		if got := snap[`autoglobe_wire_call_seconds_count{transport="http"}`]; got != 1 {
			t.Errorf("latency observations = %v, want 1", got)
		}
	})
}
