package wire

import (
	"encoding/json"
	"testing"
)

// benchHeartbeatEnvelope is a representative heartbeat: one paper host
// carrying four instance samples.
func benchHeartbeatEnvelope() *Envelope {
	return &Envelope{
		Version: Version, Type: TypeHeartbeat, From: "blade07", To: "coordinator",
		Seq: 420, Heartbeat: &Heartbeat{
			Host: "blade07", Minute: 1234, CPU: 0.6172839, Mem: 0.25,
			Instances: []InstanceSample{
				{ID: "fi-app-1", Service: "fi-app", Load: 0.31},
				{ID: "hr-app-2", Service: "hr-app", Load: 0.12},
				{ID: "les-app-3", Service: "les-app", Load: 0.09},
				{ID: "bw-app-4", Service: "bw-app", Load: 0.11},
			},
		},
	}
}

// BenchmarkEnvelopeCodec compares a full encode+decode round trip of
// the heartbeat envelope — the control plane's hottest message — in
// both wire codecs. The binary path uses the pooled frame buffers and
// envelope carriers plus the string interner, which is exactly what
// the loopback and HTTP transports use in steady state.
func BenchmarkEnvelopeCodec(b *testing.B) {
	env := benchHeartbeatEnvelope()

	b.Run("binary", func(b *testing.B) {
		in := NewInterner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame := AcquireFrame()
			buf, err := AppendEnvelope((*frame)[:0], env)
			if err != nil {
				b.Fatal(err)
			}
			*frame = buf
			dec, _, err := DecodeEnvelope(buf, in)
			if err != nil {
				b.Fatal(err)
			}
			ReleaseEnvelope(dec)
			ReleaseFrame(frame)
		}
	})

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := json.Marshal(env)
			if err != nil {
				b.Fatal(err)
			}
			var dec Envelope
			if err := json.Unmarshal(buf, &dec); err != nil {
				b.Fatal(err)
			}
			if err := dec.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnvelopeEncode isolates the encode halves, the agent-side
// cost of putting one heartbeat on the wire.
func BenchmarkEnvelopeEncode(b *testing.B) {
	env := benchHeartbeatEnvelope()
	b.Run("binary", func(b *testing.B) {
		frame := AcquireFrame()
		defer ReleaseFrame(frame)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := AppendEnvelope((*frame)[:0], env)
			if err != nil {
				b.Fatal(err)
			}
			*frame = buf
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}
