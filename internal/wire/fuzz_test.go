package wire

import (
	"fmt"
	"testing"
)

// corpusEnvelopes is one valid envelope per binary kind — the happy
// half of the fuzz seed corpus, shared with gen_corpus.go.
func corpusEnvelopes() []*Envelope {
	return []*Envelope{
		{Version: Version, Type: TypeHeartbeat, From: "b1", To: "coordinator", Seq: 7,
			Heartbeat: &Heartbeat{Host: "b1", Minute: 42, CPU: 0.5, Mem: 0.25,
				Instances: []InstanceSample{
					{ID: "app-1", Service: "app", Load: 0.3},
					{ID: "app-2", Service: "app", Load: 0.2},
				}}},
		{Version: Version, Type: TypeAction, From: "coordinator", To: "b1", Seq: 8, Epoch: 2,
			Action: &ActionRequest{Key: "coordinator-e2-000001", Op: OpStart,
				Host: "b1", Service: "app", InstanceID: "app-3", Delta: 1,
				DeadlineUnixMS: 1700000000000}},
		{Version: Version, Type: TypeAck, From: "b1", To: "coordinator", Seq: 9,
			Ack: &ActionAck{Key: "coordinator-e2-000001", OK: true, Duplicate: true}},
		{Version: Version, Type: TypeAck, From: "b1", To: "coordinator", Seq: 10,
			Ack: &ActionAck{Key: "coordinator-e2-000002", Error: "unknown instance"}},
		{Version: Version, Type: TypeProbe, From: "coordinator", To: "b1",
			Probe: &Probe{Host: "b1", Minute: 42}},
		{Version: Version, Type: TypeProbeAck, From: "b1", To: "coordinator",
			Probe: &Probe{Host: "b1", Minute: 42}},
		{Version: Version, Type: TypeHello, From: "b9", To: "coordinator",
			Hello: &Hello{Host: "b9", PerformanceIndex: 1.25, MemoryMB: 4096,
				Addr: "http://127.0.0.1:8147"}},
		{Version: Version, Type: TypeRuleGet, From: "admin", To: "coordinator", Seq: 11,
			RuleGet: &RuleGet{Name: "serviceOverloaded", Version: 2}},
		{Version: Version, Type: TypeRulePut, From: "admin", To: "coordinator", Seq: 12,
			RulePut: &RulePut{Name: "select/placement", Version: 3,
				Hash:     "ab12cd34",
				Source:   "IF cpuLoad IS high THEN scaleOut IS applicable\n",
				Activate: true}},
		{Version: Version, Type: TypeRulePut, From: "coordinator", To: "admin", Seq: 13,
			RulePut: &RulePut{Name: "serverIdle", Error: "fuzzy: parse error at line 1"}},
		{Version: Version, Type: TypeRuleList, From: "admin", To: "coordinator",
			RuleList: &RuleList{}},
		{Version: Version, Type: TypeRuleList, From: "coordinator", To: "admin",
			RuleList: &RuleList{Entries: []RuleInfo{
				{Name: "select/placement", Version: 3, Hash: "ab12cd34", Active: true, Rules: 5},
				{Name: "serviceOverloaded", Version: 1, Hash: "99ff00aa", Rules: 2},
			}}},
		{Version: Version, Type: TypeLease, From: "coordinator", To: "b1", Seq: 14, Epoch: 3,
			Lease: &Lease{Leader: "coordinator", Epoch: 3, Minute: 615}},
		{Version: Version, Type: TypeLeaseAck, From: "b1", To: "coordinator", Seq: 15,
			Lease: &Lease{Leader: "standby-1", Epoch: 4, Minute: 616}},
	}
}

// renderEnvelope flattens an envelope into a comparable string. It
// must not go through encoding/json (fuzzed frames legally carry NaN
// and ±Inf floats, which JSON cannot represent) and must not compare
// pointers (decodes are pooled). %v prints NaN/Inf fine, and two
// decodes of the same frame render identically.
func renderEnvelope(e *Envelope) string {
	s := fmt.Sprintf("v%d|%s|%s>%s|seq%d|ep%d", e.Version, e.Type, e.From, e.To, e.Seq, e.Epoch)
	switch {
	case e.Heartbeat != nil:
		s += fmt.Sprintf("|%+v", *e.Heartbeat)
	case e.Action != nil:
		s += fmt.Sprintf("|%+v", *e.Action)
	case e.Ack != nil:
		s += fmt.Sprintf("|%+v", *e.Ack)
	case e.Probe != nil:
		s += fmt.Sprintf("|%+v", *e.Probe)
	case e.Hello != nil:
		s += fmt.Sprintf("|%+v", *e.Hello)
	case e.RuleGet != nil:
		s += fmt.Sprintf("|%+v", *e.RuleGet)
	case e.RulePut != nil:
		s += fmt.Sprintf("|%+v", *e.RulePut)
	case e.RuleList != nil:
		s += fmt.Sprintf("|%+v", *e.RuleList)
	case e.Lease != nil:
		s += fmt.Sprintf("|%+v", *e.Lease)
	}
	return s
}

// FuzzEnvelopeDecode is the native fuzz target for the binary wire
// codec: whatever bytes arrive on a socket — truncated frames, length
// prefixes that lie, unknown kinds, trailing garbage — the decoder must
// never panic, must only ever return validated envelopes, and must be a
// true inverse of the encoder (decode → encode → decode is identity).
// Run with
//
//	go test -fuzz FuzzEnvelopeDecode ./internal/wire
//
// The seed corpus (f.Add below plus testdata/fuzz/FuzzEnvelopeDecode,
// regenerable with `go run gen_corpus.go`) doubles as a regression
// suite: a plain `go test` replays every seed.
func FuzzEnvelopeDecode(f *testing.F) {
	var frames [][]byte
	for _, env := range corpusEnvelopes() {
		b, err := AppendEnvelope(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, b)
		f.Add(b)
	}
	hb := frames[0]
	f.Add([]byte{})
	f.Add([]byte{frameMagic})
	f.Add(hb[:len(hb)-3]) // truncated mid-payload
	f.Add(hb[:7])         // truncated mid-header
	badMagic := append([]byte(nil), hb...)
	badMagic[0] = 0x7B // '{' — JSON sniffing territory, not a frame
	f.Add(badMagic)
	lying := append([]byte(nil), hb...)
	lying[1], lying[2], lying[3], lying[4] = 0xFF, 0xFF, 0xFF, 0x7F // length ~2^31
	f.Add(lying)
	short := append([]byte(nil), hb...)
	short[1] = byte(int(short[1]) - 4) // length smaller than payload: trailing bytes
	f.Add(short)
	badKind := append([]byte(nil), hb...)
	badKind[6] = 0xEE // unknown kind byte
	f.Add(badKind)
	hugeCount := append([]byte(nil), hb...)
	f.Add(append(hugeCount, 0xFF, 0xFF, 0xFF)) // trailing garbage after the frame
	f.Add([]byte("not a frame at all"))

	in := NewInterner()
	f.Fuzz(func(t *testing.T, b []byte) {
		env, n, err := DecodeEnvelope(b, in)
		if err != nil {
			if env != nil {
				t.Fatalf("error %v returned an envelope", err)
			}
			return
		}
		if n < 5 || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if verr := env.Validate(); verr != nil {
			t.Fatalf("decoder returned an invalid envelope: %v", verr)
		}
		want := renderEnvelope(env)

		// Round trip: whatever decodes must re-encode into a frame that
		// decodes back to the identical envelope.
		re, rerr := AppendEnvelope(nil, env)
		ReleaseEnvelope(env)
		if rerr != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", rerr)
		}
		env2, n2, err2 := DecodeEnvelope(re, in)
		if err2 != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err2)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		got := renderEnvelope(env2)
		ReleaseEnvelope(env2)
		if want != got {
			t.Fatalf("round trip diverges:\n got %s\nwant %s", got, want)
		}
	})
}

// TestFuzzSeedsDecode pins the intent of the handcrafted corpus
// mutations: each must be rejected with an error, never a panic.
func TestFuzzSeedsDecode(t *testing.T) {
	in := NewInterner()
	hb, err := AppendEnvelope(nil, corpusEnvelopes()[0])
	if err != nil {
		t.Fatal(err)
	}
	reject := func(label string, b []byte) {
		t.Helper()
		if env, _, err := DecodeEnvelope(b, in); err == nil {
			ReleaseEnvelope(env)
			t.Errorf("%s: decoded successfully, want error", label)
		}
	}
	reject("empty", nil)
	reject("magic only", []byte{frameMagic})
	reject("truncated payload", hb[:len(hb)-3])
	reject("truncated header", hb[:7])
	badMagic := append([]byte(nil), hb...)
	badMagic[0] = 0x7B
	reject("bad magic", badMagic)
	lying := append([]byte(nil), hb...)
	lying[1], lying[2], lying[3], lying[4] = 0xFF, 0xFF, 0xFF, 0x7F
	reject("lying length", lying)
	short := append([]byte(nil), hb...)
	short[1] = byte(int(short[1]) - 4)
	reject("trailing payload bytes", short)
	badKind := append([]byte(nil), hb...)
	badKind[6] = 0xEE
	reject("unknown kind", badKind)

	// Trailing bytes AFTER a complete frame are fine for the streaming
	// decoder — it reports how much it consumed — but the transports
	// reject them (a request body must be exactly one frame).
	env, n, err := DecodeEnvelope(append(append([]byte(nil), hb...), 0xFF, 0xFF), in)
	if err != nil {
		t.Fatalf("frame with trailing bytes: %v", err)
	}
	if n != len(hb) {
		t.Fatalf("consumed %d bytes, want %d", n, len(hb))
	}
	ReleaseEnvelope(env)
}
