package wire

import (
	"context"
	"errors"
)

// Handler processes one incoming envelope and returns the reply
// envelope. Transports invoke it synchronously per delivered message;
// implementations must be safe for concurrent use.
type Handler func(*Envelope) (*Envelope, error)

// Transport moves envelopes between named nodes. Implementations:
// Loopback (in-memory, deterministic, fault-injectable) and HTTP
// (net/http JSON over TCP). A full monitor → controller → action round
// trip must behave identically on either — the control plane's logic
// lives above this interface.
type Transport interface {
	// Listen registers the handler for a node name. A node can listen
	// only once per transport.
	Listen(node string, h Handler) error
	// Call delivers the envelope to the destination node and returns its
	// reply. The context bounds the whole exchange; an expired context,
	// a dropped message or an unreachable node surface as errors the
	// caller treats uniformly as "no ack within the deadline".
	Call(ctx context.Context, node string, env *Envelope) (*Envelope, error)
	// Close releases transport resources (HTTP listeners, …).
	Close() error
}

// Sentinel errors transports return. Callers generally retry on any
// error; these exist so tests can assert on the exact failure mode.
var (
	// ErrTimeout reports a message or its reply that vanished (drop,
	// partition, or deadline).
	ErrTimeout = errors.New("wire: timed out waiting for ack")
	// ErrNoRoute reports a destination no handler is listening for.
	ErrNoRoute = errors.New("wire: no route to node")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("wire: transport closed")
)
