package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// rawPost posts an envelope without client-side validation, to test
// server-side rejection.
func rawPost(base string, env *Envelope) (*Envelope, error) {
	buf, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+WirePath, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body) //nolint:errcheck
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg.String())
	}
	var reply Envelope
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func TestLoopbackDropNext(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	delivered := 0
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		delivered++
		return AckEnvelope("a", env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
	})
	ctx := context.Background()
	tr.DropNext("a", 2)
	for i := 0; i < 2; i++ {
		if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
			t.Fatalf("dropped call %d: err = %v, want ErrTimeout", i, err)
		}
	}
	if delivered != 0 {
		t.Fatalf("handler ran %d times during drop window", delivered)
	}
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("call after drop window: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if calls, dropped := tr.Stats(); calls != 3 || dropped != 2 {
		t.Errorf("stats = (%d, %d), want (3, 2)", calls, dropped)
	}
}

// TestLoopbackDropReply: the handler runs — the operation is applied —
// but the ack vanishes. This is the failure mode idempotency keys
// exist for.
func TestLoopbackDropReply(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	delivered := 0
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		delivered++
		return AckEnvelope("a", env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
	})
	tr.DropReplyNext("a", 1)
	_, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart}))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d: reply drop must still run the handler", delivered)
	}
}

func TestLoopbackPartition(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.Listen("b", echoHandler("b")) //nolint:errcheck
	ctx := context.Background()
	tr.Isolate("a")
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("call into partition: err = %v, want ErrTimeout", err)
	}
	// Traffic from the isolated node vanishes too.
	if _, err := tr.Call(ctx, "b", ActionEnvelope("a", "b", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("call out of partition: err = %v, want ErrTimeout", err)
	}
	// Unaffected pairs keep working.
	if _, err := tr.Call(ctx, "b", ActionEnvelope("c", "b", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("healthy pair: %v", err)
	}
	tr.Heal("a")
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestLoopbackLatencyTimesOut(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.SetLatency("a", 30*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A generous deadline rides out the latency.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := tr.Call(ctx2, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("err = %v, want delivered after latency", err)
	}
}

func TestLoopbackDropRateDeterministic(t *testing.T) {
	run := func() []bool {
		tr := NewLoopback()
		defer tr.Close()
		tr.Listen("a", echoHandler("a")) //nolint:errcheck
		tr.SetDropRate(0.5, 7)
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart}))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var delivered int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded drop sequence diverged at call %d", i)
		}
		if a[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("drop rate 0.5 delivered %d/%d", delivered, len(a))
	}
}

func TestLoopbackClosed(t *testing.T) {
	tr := NewLoopback()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.Close()
	if err := tr.Listen("b", echoHandler("b")); err != ErrClosed {
		t.Errorf("Listen after close: %v", err)
	}
	if _, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrClosed {
		t.Errorf("Call after close: %v", err)
	}
}
