package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// rawPost posts an envelope without client-side validation, to test
// server-side rejection.
func rawPost(base string, env *Envelope) (*Envelope, error) {
	buf, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+WirePath, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body) //nolint:errcheck
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg.String())
	}
	var reply Envelope
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func TestLoopbackDropNext(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	delivered := 0
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		delivered++
		return AckEnvelope("a", env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
	})
	ctx := context.Background()
	tr.DropNext("a", 2)
	for i := 0; i < 2; i++ {
		if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
			t.Fatalf("dropped call %d: err = %v, want ErrTimeout", i, err)
		}
	}
	if delivered != 0 {
		t.Fatalf("handler ran %d times during drop window", delivered)
	}
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("call after drop window: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if calls, dropped := tr.Stats(); calls != 3 || dropped != 2 {
		t.Errorf("stats = (%d, %d), want (3, 2)", calls, dropped)
	}
}

// TestLoopbackDropReply: the handler runs — the operation is applied —
// but the ack vanishes. This is the failure mode idempotency keys
// exist for.
func TestLoopbackDropReply(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	delivered := 0
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		delivered++
		return AckEnvelope("a", env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
	})
	tr.DropReplyNext("a", 1)
	_, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart}))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d: reply drop must still run the handler", delivered)
	}
}

func TestLoopbackPartition(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.Listen("b", echoHandler("b")) //nolint:errcheck
	ctx := context.Background()
	tr.Isolate("a")
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("call into partition: err = %v, want ErrTimeout", err)
	}
	// Traffic from the isolated node vanishes too.
	if _, err := tr.Call(ctx, "b", ActionEnvelope("a", "b", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("call out of partition: err = %v, want ErrTimeout", err)
	}
	// Unaffected pairs keep working.
	if _, err := tr.Call(ctx, "b", ActionEnvelope("c", "b", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("healthy pair: %v", err)
	}
	tr.Heal("a")
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestLoopbackLatencyTimesOut(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.SetLatency("a", 30*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A generous deadline rides out the latency.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := tr.Call(ctx2, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != nil {
		t.Fatalf("err = %v, want delivered after latency", err)
	}
}

func TestLoopbackDropRateDeterministic(t *testing.T) {
	run := func() []bool {
		tr := NewLoopback()
		defer tr.Close()
		tr.Listen("a", echoHandler("a")) //nolint:errcheck
		tr.SetDropRate(0.5, 7)
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart}))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var delivered int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded drop sequence diverged at call %d", i)
		}
		if a[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("drop rate 0.5 delivered %d/%d", delivered, len(a))
	}
}

// TestLoopbackDuplicateNext: a duplicated delivery runs the handler
// twice for one Call; an idempotent receiver executes once and answers
// the replay from its applied cache.
func TestLoopbackDuplicateNext(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	delivered, applied := 0, map[string]ActionAck{}
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		delivered++
		// A miniature idempotency cache, the shape agents implement.
		if cached, ok := applied[env.Action.Key]; ok {
			cached.Duplicate = true
			return AckEnvelope("a", env.From, cached), nil
		}
		ack := ActionAck{Key: env.Action.Key, OK: true}
		applied[env.Action.Key] = ack
		return AckEnvelope("a", env.From, ack), nil
	})
	tr.DuplicateNext("a", 1)
	reply, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart}))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("handler ran %d times, want 2 (duplicated delivery)", delivered)
	}
	if !reply.Ack.OK || !reply.Ack.Duplicate {
		t.Fatalf("caller saw ack %+v, want the cache-served duplicate", reply.Ack)
	}
	// The fault is one-shot.
	delivered = 0
	if _, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k2", Op: OpStart})); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("handler ran %d times after the window, want 1", delivered)
	}
}

// TestLoopbackHoldAndDeliver: a held message times out for its sender
// but is not lost — DeliverHeld lands it later, modelling stale traffic
// arriving after a partition heals.
func TestLoopbackHoldAndDeliver(t *testing.T) {
	tr := NewLoopback()
	defer tr.Close()
	var seen []string
	tr.Listen("a", func(env *Envelope) (*Envelope, error) { //nolint:errcheck
		seen = append(seen, env.Action.Key)
		return AckEnvelope("a", env.From, ActionAck{Key: env.Action.Key, OK: true}), nil
	})
	ctx := context.Background()
	tr.HoldNext("a", 2)
	for _, k := range []string{"k1", "k2"} {
		if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: k, Op: OpStart})); err != ErrTimeout {
			t.Fatalf("held call %s: err = %v, want ErrTimeout", k, err)
		}
	}
	if len(seen) != 0 || tr.Held("a") != 2 {
		t.Fatalf("held messages reached the handler early (seen %v, held %d)", seen, tr.Held("a"))
	}
	// Later traffic overtakes the held messages: delivery is reordered.
	if _, err := tr.Call(ctx, "a", ActionEnvelope("c", "a", ActionRequest{Key: "k3", Op: OpStart})); err != nil {
		t.Fatal(err)
	}
	if n := tr.DeliverHeld("a"); n != 2 {
		t.Fatalf("DeliverHeld delivered %d, want 2", n)
	}
	want := []string{"k3", "k1", "k2"}
	if len(seen) != 3 || seen[0] != want[0] || seen[1] != want[1] || seen[2] != want[2] {
		t.Fatalf("delivery order %v, want %v (reordered, then held in arrival order)", seen, want)
	}
	if tr.Held("a") != 0 || tr.DeliverHeld("a") != 0 {
		t.Fatal("held queue not drained")
	}
}

func TestLoopbackClosed(t *testing.T) {
	tr := NewLoopback()
	tr.Listen("a", echoHandler("a")) //nolint:errcheck
	tr.Close()
	if err := tr.Listen("b", echoHandler("b")); err != ErrClosed {
		t.Errorf("Listen after close: %v", err)
	}
	if _, err := tr.Call(context.Background(), "a", ActionEnvelope("c", "a", ActionRequest{Key: "k", Op: OpStart})); err != ErrClosed {
		t.Errorf("Call after close: %v", err)
	}
}
