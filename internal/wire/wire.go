// Package wire defines the control-plane protocol between AutoGlobe's
// central autonomic manager (the coordinator) and the per-host agents
// (cmd/autoglobe-agentd): versioned messages — heartbeat/load report,
// action request/ack, liveness probe — exchanged over a pluggable
// Transport. Two transports are provided: a deterministic in-memory
// loopback with injectable latency/drop/partition faults (for tests and
// single-process deployments) and a stdlib net/http JSON transport for
// real TCP landscapes. The paper's controller administered 19 blade
// hosts through ServiceGlobe's network substrate; this package is the
// equivalent substrate for the reproduction, shaped after the
// agent-streams-telemetry / manager-pushes-actions pattern of
// constraint-based autonomic deployment middleware.
package wire

import "fmt"

// Version is the protocol version carried in every envelope. A node
// receiving an envelope with a different version must reject it — the
// stacked-deployment story (rolling agent upgrades) depends on loud,
// early incompatibility errors rather than silent misparses.
const Version = 1

// MsgType enumerates the control-plane message kinds.
type MsgType string

// The message kinds of protocol version 1.
const (
	// TypeHeartbeat is the agent → coordinator load report; it doubles
	// as the liveness heartbeat (every load monitor's report is a
	// heartbeat, as in the monitoring pipeline).
	TypeHeartbeat MsgType = "heartbeat"
	// TypeAction is a coordinator → agent action request (start, stop,
	// bind, unbind, priority) carrying an idempotency key and deadline.
	TypeAction MsgType = "action"
	// TypeAck answers both heartbeats and actions.
	TypeAck MsgType = "ack"
	// TypeProbe is the coordinator → agent liveness probe, sent before a
	// silent host is declared dead.
	TypeProbe MsgType = "probe"
	// TypeProbeAck answers a probe.
	TypeProbeAck MsgType = "probeAck"
	// TypeHello announces an agent joining the landscape (host name and
	// hardware attributes), used by cmd/autoglobe-agentd.
	TypeHello MsgType = "hello"
	// TypeRuleGet asks the coordinator for one archived rule base
	// (by name, optionally by version); answered with a TypeRulePut
	// carrying the source, or an error.
	TypeRuleGet MsgType = "ruleGet"
	// TypeRulePut pushes a rule base to the coordinator's registry —
	// the admin half of treating rule bases as hot-swappable data. The
	// coordinator validates (parse + vocabulary + compile) before any
	// version is assigned or activated, and answers with a TypeRulePut
	// echoing the stored name/version/hash (or an Error). The same
	// payload shape also answers TypeRuleGet.
	TypeRulePut MsgType = "rulePut"
	// TypeRuleList asks for (request) and carries (reply) the registry
	// catalog: every stored rule-base version and which are active.
	TypeRuleList MsgType = "ruleList"
	// TypeLease is the acting leader's renewal beacon: sent every
	// coordinated minute to standby coordinators (renewing their lease
	// timers) and to agents (announcing which node currently leads, so
	// agents redirect after a takeover and drain buffered heartbeats).
	TypeLease MsgType = "lease"
	// TypeLeaseAck answers a lease beacon, echoing the receiver's
	// highest known epoch — a sender that learns of a higher epoch from
	// an ack has been deposed and steps down to standby.
	TypeLeaseAck MsgType = "leaseAck"
)

// Op enumerates the host-local operations an action request can carry.
// A controller decision decomposes into one or more ops, each addressed
// to the agent of the affected host (see agent.OpsFor).
type Op string

// The host-local operations of protocol version 1.
const (
	// OpStart launches a new instance of a service on the agent's host.
	OpStart Op = "start"
	// OpStop terminates an instance on the agent's host.
	OpStop Op = "stop"
	// OpBind binds a relocating instance to the agent's host (the
	// service-IP bind half of a move).
	OpBind Op = "bind"
	// OpUnbind releases a relocating instance from the agent's host.
	OpUnbind Op = "unbind"
	// OpPriority adjusts an instance's scheduling priority.
	OpPriority Op = "priority"
)

// InstanceSample is one instance's load measurement inside a heartbeat.
type InstanceSample struct {
	ID      string  `json:"id"`
	Service string  `json:"service"`
	Load    float64 `json:"load"`
}

// Heartbeat is the per-minute load report of one host: the host-level
// CPU and memory loads plus a sample per resident instance. Its arrival
// is also the host's liveness beat.
type Heartbeat struct {
	Host      string           `json:"host"`
	Minute    int              `json:"minute"`
	CPU       float64          `json:"cpu"`
	Mem       float64          `json:"mem"`
	Instances []InstanceSample `json:"instances,omitempty"`
}

// ActionRequest asks an agent to apply one host-local operation.
type ActionRequest struct {
	// Key is the idempotency key: retries of the same logical operation
	// reuse the key, and the agent answers duplicates from its applied
	// cache instead of double-applying.
	Key string `json:"key"`
	// Op is the operation.
	Op Op `json:"op"`
	// Host is the destination host (redundant with the envelope's To,
	// kept for auditability of persisted logs).
	Host string `json:"host"`
	// Service names the service for start/bind operations.
	Service string `json:"service,omitempty"`
	// InstanceID identifies the affected instance.
	InstanceID string `json:"instanceID,omitempty"`
	// Delta is the priority adjustment for OpPriority.
	Delta int `json:"delta,omitempty"`
	// DeadlineUnixMS is the per-action deadline: an agent receiving the
	// request after this wall-clock instant rejects it (the coordinator
	// has given up and may already be compensating). Zero disables.
	DeadlineUnixMS int64 `json:"deadlineUnixMS,omitempty"`
}

// ActionAck answers an action request.
type ActionAck struct {
	Key string `json:"key"`
	OK  bool   `json:"ok"`
	// Error explains a rejected request (OK false).
	Error string `json:"error,omitempty"`
	// Duplicate reports that the ack was served from the agent's
	// idempotency cache — the operation was NOT applied again.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Probe is a liveness probe for a silent host.
type Probe struct {
	Host   string `json:"host"`
	Minute int    `json:"minute"`
}

// Hello announces an agent joining the landscape.
type Hello struct {
	Host             string  `json:"host"`
	PerformanceIndex float64 `json:"performanceIndex"`
	MemoryMB         int     `json:"memoryMB"`
	// Addr is the agent's reachable base URL on routed transports
	// (HTTP), so the coordinator can register the return route for
	// actions and probes. Empty on transports with implicit routing
	// (loopback).
	Addr string `json:"addr,omitempty"`
}

// RuleGet asks for one rule base from the coordinator's registry.
type RuleGet struct {
	// Name addresses the rule base ("serviceOverloaded",
	// "select/placement", …).
	Name string `json:"name"`
	// Version selects an archived version; zero means the active one.
	Version int `json:"version,omitempty"`
}

// RulePut carries a rule base's source text. As a request it pushes a
// candidate to the coordinator's registry; as a reply it echoes what
// was stored (Version and Hash assigned by the registry) or answers a
// RuleGet, or reports an Error with everything else empty.
type RulePut struct {
	Name string `json:"name"`
	// Version is registry-assigned in replies; requests leave it zero
	// (journal replay between coordinators pins it explicitly).
	Version int `json:"version,omitempty"`
	// Hash is the hex SHA-256 of Source. Requests may leave it empty;
	// when set, the receiver verifies it against the received Source
	// before validating — a cheap end-to-end corruption check.
	Hash string `json:"hash,omitempty"`
	// Source is the rule-language text.
	Source string `json:"source,omitempty"`
	// Activate asks the coordinator to hot-swap the pushed version into
	// the live controller after validation. False archives it only — an
	// admin can then shadow-evaluate before promoting.
	Activate bool `json:"activate,omitempty"`
	// Error reports a rejected push or failed lookup (reply only).
	Error string `json:"error,omitempty"`
}

// RuleInfo is one registry entry in a rule-list reply, mirroring the
// rules package's Ref.
type RuleInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	Active  bool   `json:"active,omitempty"`
	Rules   int    `json:"rules,omitempty"`
}

// RuleList is both the catalog request (empty) and its reply.
type RuleList struct {
	Entries []RuleInfo `json:"entries,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// Lease is the leader-election renewal payload, shared by TypeLease
// (the beacon) and TypeLeaseAck (the reply). In a beacon, Leader names
// the sender claiming leadership, Epoch is its journal epoch and Minute
// is its authoritative coordinated minute. In an ack, Leader names the
// leader the receiver currently follows and Epoch is the highest epoch
// the receiver has seen — the fencing signal a deposed leader steps
// down on.
type Lease struct {
	Leader string `json:"leader"`
	Epoch  uint64 `json:"epoch"`
	Minute int    `json:"minute"`
}

// Envelope is the versioned frame every message travels in.
type Envelope struct {
	Version int     `json:"v"`
	Type    MsgType `json:"type"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Seq     uint64  `json:"seq,omitempty"`
	// Epoch is the sender's coordinator incarnation (the lease token of
	// the crash-recovery protocol): a journaled coordinator bumps its
	// epoch on every restart, and agents NACK action requests carrying
	// an epoch lower than the highest they have seen — a pre-crash
	// straggler or a split-brain predecessor cannot mutate a host the
	// new incarnation already administers. Zero (the default for
	// unjournaled coordinators) disables the guard.
	Epoch uint64 `json:"epoch,omitempty"`

	Heartbeat *Heartbeat     `json:"heartbeat,omitempty"`
	Action    *ActionRequest `json:"action,omitempty"`
	Ack       *ActionAck     `json:"ack,omitempty"`
	Probe     *Probe         `json:"probe,omitempty"`
	Hello     *Hello         `json:"hello,omitempty"`
	RuleGet   *RuleGet       `json:"ruleGet,omitempty"`
	RulePut   *RulePut       `json:"rulePut,omitempty"`
	RuleList  *RuleList      `json:"ruleList,omitempty"`
	Lease     *Lease         `json:"lease,omitempty"`

	// box links a pooled envelope back to its carrier; ReleaseEnvelope
	// recycles it. Nil for plainly constructed envelopes.
	box *envBox `json:"-"`
}

// NewEnvelope frames a payload. Exactly one payload field should be set
// by the caller afterwards (or use the typed constructors below).
func NewEnvelope(t MsgType, from, to string) *Envelope {
	return &Envelope{Version: Version, Type: t, From: from, To: to}
}

// HeartbeatEnvelope frames a heartbeat.
func HeartbeatEnvelope(from, to string, hb Heartbeat) *Envelope {
	e := NewEnvelope(TypeHeartbeat, from, to)
	e.Heartbeat = &hb
	return e
}

// ActionEnvelope frames an action request.
func ActionEnvelope(from, to string, req ActionRequest) *Envelope {
	e := NewEnvelope(TypeAction, from, to)
	e.Action = &req
	return e
}

// AckEnvelope frames an action ack.
func AckEnvelope(from, to string, ack ActionAck) *Envelope {
	e := NewEnvelope(TypeAck, from, to)
	e.Ack = &ack
	return e
}

// ProbeEnvelope frames a liveness probe.
func ProbeEnvelope(from, to string, p Probe) *Envelope {
	e := NewEnvelope(TypeProbe, from, to)
	e.Probe = &p
	return e
}

// HelloEnvelope frames a join announcement.
func HelloEnvelope(from, to string, h Hello) *Envelope {
	e := NewEnvelope(TypeHello, from, to)
	e.Hello = &h
	return e
}

// RuleGetEnvelope frames a rule-base lookup request.
func RuleGetEnvelope(from, to string, g RuleGet) *Envelope {
	e := NewEnvelope(TypeRuleGet, from, to)
	e.RuleGet = &g
	return e
}

// RulePutEnvelope frames a rule-base push (or a ruleGet reply).
func RulePutEnvelope(from, to string, p RulePut) *Envelope {
	e := NewEnvelope(TypeRulePut, from, to)
	e.RulePut = &p
	return e
}

// RuleListEnvelope frames a registry-catalog request or reply.
func RuleListEnvelope(from, to string, l RuleList) *Envelope {
	e := NewEnvelope(TypeRuleList, from, to)
	e.RuleList = &l
	return e
}

// LeaseEnvelope frames a leader lease-renewal beacon.
func LeaseEnvelope(from, to string, l Lease) *Envelope {
	e := NewEnvelope(TypeLease, from, to)
	e.Lease = &l
	return e
}

// LeaseAckEnvelope frames a lease-beacon reply.
func LeaseAckEnvelope(from, to string, l Lease) *Envelope {
	e := NewEnvelope(TypeLeaseAck, from, to)
	e.Lease = &l
	return e
}

// Validate checks version and payload consistency. Transports call it
// on receipt so a malformed or incompatible frame is rejected at the
// boundary, before any handler state changes.
func (e *Envelope) Validate() error {
	if e == nil {
		return fmt.Errorf("wire: nil envelope")
	}
	if e.Version != Version {
		return fmt.Errorf("wire: protocol version %d, want %d", e.Version, Version)
	}
	switch e.Type {
	case TypeHeartbeat:
		if e.Heartbeat == nil {
			return fmt.Errorf("wire: heartbeat envelope without heartbeat payload")
		}
	case TypeAction:
		if e.Action == nil {
			return fmt.Errorf("wire: action envelope without action payload")
		}
		if e.Action.Key == "" {
			return fmt.Errorf("wire: action without idempotency key")
		}
	case TypeAck:
		if e.Ack == nil {
			return fmt.Errorf("wire: ack envelope without ack payload")
		}
	case TypeProbe, TypeProbeAck:
		if e.Probe == nil {
			return fmt.Errorf("wire: probe envelope without probe payload")
		}
	case TypeHello:
		if e.Hello == nil {
			return fmt.Errorf("wire: hello envelope without hello payload")
		}
	case TypeRuleGet:
		if e.RuleGet == nil {
			return fmt.Errorf("wire: ruleGet envelope without ruleGet payload")
		}
		if e.RuleGet.Name == "" {
			return fmt.Errorf("wire: ruleGet without rule-base name")
		}
	case TypeRulePut:
		if e.RulePut == nil {
			return fmt.Errorf("wire: rulePut envelope without rulePut payload")
		}
		if e.RulePut.Name == "" {
			return fmt.Errorf("wire: rulePut without rule-base name")
		}
		// A push carries Source; an error reply carries Error; a success
		// reply carries the registry-assigned Version. Anything with none
		// of the three says nothing at all.
		if e.RulePut.Source == "" && e.RulePut.Error == "" && e.RulePut.Version == 0 {
			return fmt.Errorf("wire: rulePut without source, version or error")
		}
	case TypeRuleList:
		if e.RuleList == nil {
			return fmt.Errorf("wire: ruleList envelope without ruleList payload")
		}
	case TypeLease, TypeLeaseAck:
		if e.Lease == nil {
			return fmt.Errorf("wire: lease envelope without lease payload")
		}
		if e.Lease.Leader == "" {
			return fmt.Errorf("wire: lease without leader name")
		}
	default:
		return fmt.Errorf("wire: unknown message type %q", e.Type)
	}
	return nil
}
