package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"autoglobe/internal/obs"
)

// WirePath is the HTTP endpoint every node serves the protocol on.
const WirePath = "/autoglobe/v1/wire"

// HTTP is the TCP transport: each listening node runs a stdlib
// net/http server accepting JSON envelopes on WirePath, and calls POST
// to the destination's base URL. Node names map to base URLs through an
// internal peer table — filled automatically for nodes listening on the
// same transport instance (single-process tests) and explicitly via
// Register for real multi-process landscapes (cmd/autoglobe-agentd).
type HTTP struct {
	// DefaultListenAddr, when non-empty, is the address Listen binds
	// instead of an ephemeral localhost port — e.g. "0.0.0.0:7700" for a
	// daemon on a routable interface. Set it before the first Listen; it
	// only makes sense for processes hosting a single node (each Listen
	// binds the address once).
	DefaultListenAddr string

	// Codec selects the encoding outgoing calls use (default CodecJSON).
	// The server side needs no configuration: it answers every request
	// in the codec the request arrived in (negotiation by content type),
	// so mixed landscapes — a binary coordinator administering JSON
	// agents, or the reverse — interoperate without a handshake. Set
	// before the first Call.
	Codec Codec

	// Server hardening knobs, applied to every server ListenOn starts.
	// Zero values pick conservative defaults (see newServer): a slow or
	// stalled client must never pin a handler goroutine forever. Set
	// before the first Listen.
	ReadHeaderTimeout time.Duration // default 5s
	ReadTimeout       time.Duration // default 30s
	WriteTimeout      time.Duration // default 30s
	IdleTimeout       time.Duration // default 2m
	MaxHeaderBytes    int           // default 64 KiB

	mu        sync.Mutex
	peers     map[string]string // node -> base URL
	listeners []net.Listener
	servers   []*http.Server
	extra     map[string]http.Handler // Mount'ed sidecar handlers
	closed    bool
	metrics   *wireMetrics

	client *http.Client
	intern *Interner
}

// NewHTTP returns an HTTP transport with a default client.
func NewHTTP() *HTTP {
	return &HTTP{
		peers:  make(map[string]string),
		client: &http.Client{Timeout: 30 * time.Second},
		intern: NewInterner(),
	}
}

// Instrument attaches an obs registry: every subsequent Call is counted
// by message type, failures by cause, latency into a histogram, and
// envelope bytes by direction. A nil registry leaves the transport
// uninstrumented. Safe to call before or after Listen.
func (t *HTTP) Instrument(r *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = newWireMetrics(r, "http")
}

// Mount registers a sidecar HTTP handler (e.g. obs.Handler's /metrics
// and /healthz) served by every listener this transport starts. Call
// before Listen/ListenOn; handlers mounted later only appear on
// listeners started afterwards. The WirePath route cannot be shadowed.
func (t *HTTP) Mount(path string, h http.Handler) {
	if path == "" || path == WirePath || h == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.extra == nil {
		t.extra = make(map[string]http.Handler)
	}
	t.extra[path] = h
}

// Listen implements Transport: it binds DefaultListenAddr (fallback: an
// ephemeral localhost port) for the node and registers the node → URL
// mapping locally. Use ListenOn to control the address per node.
func (t *HTTP) Listen(node string, h Handler) error {
	addr := t.DefaultListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	_, err := t.ListenOn(node, addr, h)
	return err
}

// ListenOn binds the given address for the node and returns the node's
// base URL (useful with ":0" ports).
func (t *HTTP) ListenOn(node, addr string, h Handler) (string, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", ErrClosed
	}
	if _, dup := t.peers[node]; dup {
		t.mu.Unlock()
		return "", errDuplicateListener(node)
	}
	extra := make(map[string]http.Handler, len(t.extra))
	for p, eh := range t.extra {
		extra[p] = eh
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(WirePath, func(w http.ResponseWriter, r *http.Request) {
		t.serveWire(w, r, h)
	})
	for p, eh := range extra {
		mux.Handle(p, eh)
	}
	srv := t.newServer(mux)
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close

	base := "http://" + ln.Addr().String()
	t.mu.Lock()
	t.peers[node] = base
	t.listeners = append(t.listeners, ln)
	t.servers = append(t.servers, srv)
	t.mu.Unlock()
	return base, nil
}

// newServer builds a hardened http.Server: every timeout the stdlib
// leaves at "unlimited" is capped so a slow-loris client (partial
// header, stalled body) cannot pin connections indefinitely.
func (t *HTTP) newServer(mux *http.ServeMux) *http.Server {
	pick := func(v, def time.Duration) time.Duration {
		if v > 0 {
			return v
		}
		return def
	}
	maxHeader := t.MaxHeaderBytes
	if maxHeader <= 0 {
		maxHeader = 64 << 10
	}
	return &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: pick(t.ReadHeaderTimeout, 5*time.Second),
		ReadTimeout:       pick(t.ReadTimeout, 30*time.Second),
		WriteTimeout:      pick(t.WriteTimeout, 30*time.Second),
		IdleTimeout:       pick(t.IdleTimeout, 2*time.Minute),
		MaxHeaderBytes:    maxHeader,
	}
}

// Register maps a remote node name to its base URL (e.g.
// "http://10.0.0.7:7700") so Call can reach nodes served by another
// process.
func (t *HTTP) Register(node, baseURL string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node] = baseURL
}

// Addr returns the base URL registered for a node.
func (t *HTTP) Addr(node string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.peers[node]
	return u, ok
}

// jsonCodec pools a scratch buffer with a JSON encoder permanently
// bound to it, plus a reusable bytes.Reader for request bodies, so the
// JSON fallback path stops allocating encoder state per call.
type jsonCodec struct {
	buf    bytes.Buffer
	enc    *json.Encoder
	reader bytes.Reader
}

var jsonPool = sync.Pool{
	New: func() any {
		c := &jsonCodec{}
		c.enc = json.NewEncoder(&c.buf)
		return c
	},
}

func acquireJSON() *jsonCodec {
	c := jsonPool.Get().(*jsonCodec)
	c.buf.Reset()
	return c
}

func releaseJSON(c *jsonCodec) {
	if c.buf.Cap() <= maxFrame {
		jsonPool.Put(c)
	}
}

// readBody drains r (capped at maxFrame bytes) into the pooled buffer,
// growing it geometrically, without the per-call allocations of
// io.ReadAll.
func readBody(r io.Reader, buf *[]byte) error {
	b := (*buf)[:0]
	lr := io.LimitReader(r, maxFrame)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*buf = b
			return nil
		}
		if err != nil {
			*buf = b
			return err
		}
	}
}

// serveWire handles one POSTed envelope. The codec is negotiated per
// request — a BinaryContentType body (or one opening with the frame
// magic, which no JSON document can) is decoded binary, anything else
// JSON — and the reply mirrors the request's codec, so heterogeneous
// peers interoperate without a handshake.
func (t *HTTP) serveWire(w http.ResponseWriter, r *http.Request, h Handler) {
	if r.Method != http.MethodPost {
		http.Error(w, "wire: POST only", http.StatusMethodNotAllowed)
		return
	}
	buf := AcquireFrame()
	defer ReleaseFrame(buf)
	if err := readBody(r.Body, buf); err != nil {
		http.Error(w, "wire: read: "+err.Error(), http.StatusBadRequest)
		return
	}
	body := *buf
	binaryReq := r.Header.Get("Content-Type") == BinaryContentType ||
		(len(body) > 0 && body[0] == frameMagic)
	var env *Envelope
	if binaryReq {
		decoded, n, err := DecodeEnvelope(body, t.intern)
		if err != nil {
			http.Error(w, "wire: decode: "+err.Error(), http.StatusBadRequest)
			return
		}
		if n != len(body) {
			ReleaseEnvelope(decoded)
			http.Error(w, "wire: trailing bytes after frame", http.StatusBadRequest)
			return
		}
		defer ReleaseEnvelope(decoded)
		env = decoded
	} else {
		env = new(Envelope)
		if err := json.Unmarshal(body, env); err != nil {
			http.Error(w, "wire: decode: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Version negotiation happens here: an incompatible frame is
		// rejected loudly before any handler state changes.
		if err := env.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	reply, err := h(env)
	if err != nil {
		ReleaseEnvelope(reply)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if reply == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	defer ReleaseEnvelope(reply)
	if binaryReq {
		out := AcquireFrame()
		defer ReleaseFrame(out)
		b, err := AppendEnvelope((*out)[:0], reply)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		*out = b
		w.Header().Set("Content-Type", BinaryContentType)
		w.Write(b) //nolint:errcheck // header already sent
		return
	}
	jc := acquireJSON()
	defer releaseJSON(jc)
	if err := jc.enc.Encode(reply); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", JSONContentType)
	w.Write(jc.buf.Bytes()) //nolint:errcheck // header already sent
}

// Call implements Transport.
func (t *HTTP) Call(ctx context.Context, node string, env *Envelope) (*Envelope, error) {
	reply, err := t.call(ctx, node, env)
	if err != nil {
		t.instruments().fail(err)
	}
	return reply, err
}

// instruments returns the current metric sinks (nil → no-op methods).
func (t *HTTP) instruments() *wireMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics
}

func (t *HTTP) call(ctx context.Context, node string, env *Envelope) (*Envelope, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	base, ok := t.peers[node]
	client := t.client
	m := t.metrics
	codec := t.Codec
	t.mu.Unlock()
	if !ok {
		return nil, ErrNoRoute
	}
	m.call(env.Type)
	start := time.Now()
	defer m.observe(start)

	// Encode into pooled state: a binary frame buffer, or the pooled
	// buffer+encoder pair of the JSON fallback — either way the encode
	// side of a call performs no steady-state allocations.
	jc := acquireJSON()
	defer releaseJSON(jc)
	var payload []byte
	ctype := JSONContentType
	if codec == CodecBinary {
		frame := AcquireFrame()
		defer ReleaseFrame(frame)
		b, err := AppendEnvelope((*frame)[:0], env)
		if err != nil {
			return nil, fmt.Errorf("wire: encode: %w", err)
		}
		*frame = b
		payload = b
		ctype = BinaryContentType
	} else {
		if err := jc.enc.Encode(env); err != nil {
			return nil, fmt.Errorf("wire: encode: %w", err)
		}
		payload = jc.buf.Bytes()
	}
	m.sent(len(payload))
	jc.reader.Reset(payload)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+WirePath, &jc.reader)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ctype)
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ErrTimeout
		}
		return nil, fmt.Errorf("wire: call %s: %w", node, err)
	}
	defer resp.Body.Close()
	rbuf := AcquireFrame()
	defer ReleaseFrame(rbuf)
	if err := readBody(resp.Body, rbuf); err != nil {
		// A context deadline can expire mid-body just as well as
		// mid-connect: the caller asked for a bounded call, so both
		// surface as the same sentinel.
		if ctx.Err() != nil {
			return nil, ErrTimeout
		}
		return nil, fmt.Errorf("wire: call %s: read reply: %w", node, err)
	}
	body := *rbuf
	m.received(len(body))
	switch resp.StatusCode {
	case http.StatusOK:
		if resp.Header.Get("Content-Type") == BinaryContentType ||
			(len(body) > 0 && body[0] == frameMagic) {
			reply, n, derr := DecodeEnvelope(body, t.intern)
			if derr != nil {
				return nil, fmt.Errorf("wire: call %s: decode reply: %w", node, derr)
			}
			if n != len(body) {
				ReleaseEnvelope(reply)
				return nil, fmt.Errorf("wire: call %s: trailing bytes after reply frame", node)
			}
			return reply, nil
		}
		var reply Envelope
		if err := json.Unmarshal(body, &reply); err != nil {
			return nil, fmt.Errorf("wire: call %s: decode reply: %w", node, err)
		}
		if err := reply.Validate(); err != nil {
			return nil, err
		}
		return &reply, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("wire: call %s: HTTP %d: %s", node, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// Close implements Transport: shuts down every server this instance
// started.
func (t *HTTP) Close() error {
	t.mu.Lock()
	t.closed = true
	servers := t.servers
	t.servers = nil
	t.listeners = nil
	t.mu.Unlock()
	var firstErr error
	for _, srv := range servers {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		cancel()
	}
	return firstErr
}
