package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// WirePath is the HTTP endpoint every node serves the protocol on.
const WirePath = "/autoglobe/v1/wire"

// HTTP is the TCP transport: each listening node runs a stdlib
// net/http server accepting JSON envelopes on WirePath, and calls POST
// to the destination's base URL. Node names map to base URLs through an
// internal peer table — filled automatically for nodes listening on the
// same transport instance (single-process tests) and explicitly via
// Register for real multi-process landscapes (cmd/autoglobe-agentd).
type HTTP struct {
	// DefaultListenAddr, when non-empty, is the address Listen binds
	// instead of an ephemeral localhost port — e.g. "0.0.0.0:7700" for a
	// daemon on a routable interface. Set it before the first Listen; it
	// only makes sense for processes hosting a single node (each Listen
	// binds the address once).
	DefaultListenAddr string

	mu        sync.Mutex
	peers     map[string]string // node -> base URL
	listeners []net.Listener
	servers   []*http.Server
	closed    bool

	client *http.Client
}

// NewHTTP returns an HTTP transport with a default client.
func NewHTTP() *HTTP {
	return &HTTP{
		peers:  make(map[string]string),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// Listen implements Transport: it binds DefaultListenAddr (fallback: an
// ephemeral localhost port) for the node and registers the node → URL
// mapping locally. Use ListenOn to control the address per node.
func (t *HTTP) Listen(node string, h Handler) error {
	addr := t.DefaultListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	_, err := t.ListenOn(node, addr, h)
	return err
}

// ListenOn binds the given address for the node and returns the node's
// base URL (useful with ":0" ports).
func (t *HTTP) ListenOn(node, addr string, h Handler) (string, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", ErrClosed
	}
	if _, dup := t.peers[node]; dup {
		t.mu.Unlock()
		return "", errDuplicateListener(node)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(WirePath, func(w http.ResponseWriter, r *http.Request) {
		serveWire(w, r, h)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close

	base := "http://" + ln.Addr().String()
	t.mu.Lock()
	t.peers[node] = base
	t.listeners = append(t.listeners, ln)
	t.servers = append(t.servers, srv)
	t.mu.Unlock()
	return base, nil
}

// Register maps a remote node name to its base URL (e.g.
// "http://10.0.0.7:7700") so Call can reach nodes served by another
// process.
func (t *HTTP) Register(node, baseURL string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node] = baseURL
}

// Addr returns the base URL registered for a node.
func (t *HTTP) Addr(node string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.peers[node]
	return u, ok
}

func serveWire(w http.ResponseWriter, r *http.Request, h Handler) {
	if r.Method != http.MethodPost {
		http.Error(w, "wire: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, "wire: read: "+err.Error(), http.StatusBadRequest)
		return
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		http.Error(w, "wire: decode: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Version negotiation happens here: an incompatible frame is
	// rejected loudly before any handler state changes.
	if err := env.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply, err := h(&env)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if reply == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := json.NewEncoder(w).Encode(reply); err != nil {
		// Header already sent; nothing more to do.
		return
	}
}

// Call implements Transport.
func (t *HTTP) Call(ctx context.Context, node string, env *Envelope) (*Envelope, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	base, ok := t.peers[node]
	client := t.client
	t.mu.Unlock()
	if !ok {
		return nil, ErrNoRoute
	}

	buf, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+WirePath, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ErrTimeout
		}
		return nil, fmt.Errorf("wire: call %s: %w", node, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("wire: call %s: read reply: %w", node, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var reply Envelope
		if err := json.Unmarshal(body, &reply); err != nil {
			return nil, fmt.Errorf("wire: call %s: decode reply: %w", node, err)
		}
		if err := reply.Validate(); err != nil {
			return nil, err
		}
		return &reply, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("wire: call %s: HTTP %d: %s", node, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// Close implements Transport: shuts down every server this instance
// started.
func (t *HTTP) Close() error {
	t.mu.Lock()
	t.closed = true
	servers := t.servers
	t.servers = nil
	t.listeners = nil
	t.mu.Unlock()
	var firstErr error
	for _, srv := range servers {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		cancel()
	}
	return firstErr
}
