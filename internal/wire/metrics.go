package wire

import (
	"errors"
	"time"

	"autoglobe/internal/obs"
)

// Metric families the transports emit. Exported as constants so tests
// and dashboards reference one spelling.
const (
	MetricCalls   = "autoglobe_wire_calls_total"
	MetricErrors  = "autoglobe_wire_errors_total"
	MetricSeconds = "autoglobe_wire_call_seconds"
	MetricBytes   = "autoglobe_wire_bytes_total"
)

// wireMetrics pre-resolves a transport's metric series at Instrument
// time, so the per-call cost is a nil check and an atomic add — cheap
// enough to stay unconditionally on the call path.
type wireMetrics struct {
	calls      map[MsgType]*obs.Counter
	callsOther *obs.Counter

	errTimeout *obs.Counter
	errNoRoute *obs.Counter
	errClosed  *obs.Counter
	errOther   *obs.Counter

	latency  *obs.Histogram
	bytesOut *obs.Counter // request envelope bytes (HTTP only)
	bytesIn  *obs.Counter // reply envelope bytes (HTTP only)
}

// newWireMetrics registers the series for one transport label.
func newWireMetrics(r *obs.Registry, transport string) *wireMetrics {
	if r == nil {
		return nil
	}
	r.Help(MetricCalls, "Control-plane calls sent, by transport and message type.")
	r.Help(MetricErrors, "Failed control-plane calls, by transport and cause.")
	r.Help(MetricSeconds, "Latency of one control-plane call (request to reply).")
	r.Help(MetricBytes, "Envelope bytes on the wire, by direction (HTTP transport).")
	m := &wireMetrics{calls: make(map[MsgType]*obs.Counter)}
	for _, mt := range []MsgType{TypeHeartbeat, TypeAction, TypeAck, TypeProbe, TypeProbeAck, TypeHello} {
		m.calls[mt] = r.Counter(MetricCalls, "transport", transport, "type", string(mt))
	}
	m.callsOther = r.Counter(MetricCalls, "transport", transport, "type", "other")
	cause := func(c string) *obs.Counter {
		return r.Counter(MetricErrors, "transport", transport, "cause", c)
	}
	m.errTimeout = cause("timeout")
	m.errNoRoute = cause("noRoute")
	m.errClosed = cause("closed")
	m.errOther = cause("other")
	m.latency = r.Histogram(MetricSeconds, obs.LatencySecondsBuckets(), "transport", transport)
	if transport == "http" {
		m.bytesOut = r.Counter(MetricBytes, "direction", "sent", "transport", transport)
		m.bytesIn = r.Counter(MetricBytes, "direction", "received", "transport", transport)
	}
	return m
}

// call counts one outgoing call by message type. Nil-safe.
func (m *wireMetrics) call(t MsgType) {
	if m == nil {
		return
	}
	if c, ok := m.calls[t]; ok {
		c.Inc()
		return
	}
	m.callsOther.Inc()
}

// fail counts one failed call by cause. Nil-safe.
func (m *wireMetrics) fail(err error) {
	if m == nil || err == nil {
		return
	}
	switch {
	case errors.Is(err, ErrTimeout):
		m.errTimeout.Inc()
	case errors.Is(err, ErrNoRoute):
		m.errNoRoute.Inc()
	case errors.Is(err, ErrClosed):
		m.errClosed.Inc()
	default:
		m.errOther.Inc()
	}
}

// observe records the call latency. Nil-safe.
func (m *wireMetrics) observe(start time.Time) {
	if m == nil {
		return
	}
	m.latency.Observe(time.Since(start).Seconds())
}

// sent / received count envelope bytes. Nil-safe.
func (m *wireMetrics) sent(n int) {
	if m == nil {
		return
	}
	m.bytesOut.Add(float64(n))
}

func (m *wireMetrics) received(n int) {
	if m == nil {
		return
	}
	m.bytesIn.Add(float64(n))
}
