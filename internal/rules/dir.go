package rules

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rule-base files on disk are named <name>@v<version>.rules, with '/'
// in the name mapping to subdirectories (select/placement@v2.rules).
// The file body is the pushed source, byte for byte — the content hash
// of a loaded file must match the hash journaled at activation time.

// fileExt is the rule-file suffix LoadDir scans for.
const fileExt = ".rules"

// EntryPath returns the file path for (name, version) under dir.
func EntryPath(dir, name string, version int) string {
	return filepath.Join(dir, filepath.FromSlash(name)+"@v"+strconv.Itoa(version)+fileExt)
}

// parseEntryName splits "<name>@v<version>" out of a path relative to
// the load root.
func parseEntryName(rel string) (name string, version int, err error) {
	base := strings.TrimSuffix(rel, fileExt)
	at := strings.LastIndex(base, "@v")
	if at < 1 {
		return "", 0, fmt.Errorf("rules: file %q is not <name>@v<version>%s", rel, fileExt)
	}
	version, err = strconv.Atoi(base[at+2:])
	if err != nil || version < 1 {
		return "", 0, fmt.Errorf("rules: file %q has invalid version", rel)
	}
	return filepath.ToSlash(base[:at]), version, nil
}

// WriteEntry persists an entry under dir, creating subdirectories as
// needed. The write goes through a temp file and rename so a crashed
// push never leaves a torn rule file for LoadDir to trip over.
func WriteEntry(dir string, e *Entry) error {
	path := EntryPath(dir, e.Name, e.Version)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(e.Source), 0o644); err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	return nil
}

// LoadDir loads every *.rules file under dir into the registry via
// PutVersion and activates the highest loaded version of each name.
// (A coordinator recovering from its journal re-activates the journaled
// versions afterwards, overriding the highest-wins default.) A missing
// dir is an empty registry, not an error. Returns the loaded refs.
func (r *Registry) LoadDir(dir string) ([]Ref, error) {
	var loaded []Ref
	highest := make(map[string]int)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) && path == dir {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, fileExt) {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		name, version, err := parseEntryName(rel)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		e, err := r.PutVersion(name, version, string(src))
		if err != nil {
			return err
		}
		loaded = append(loaded, Ref{Name: e.Name, Version: e.Version, Hash: e.Hash, Rules: e.Base.Len()})
		if version > highest[name] {
			highest[name] = version
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rules: load %s: %w", dir, err)
	}
	for name, v := range highest {
		if _, err := r.Activate(name, v); err != nil {
			return nil, err
		}
	}
	for i := range loaded {
		loaded[i].Active = highest[loaded[i].Name] == loaded[i].Version
	}
	sort.Slice(loaded, func(i, j int) bool {
		if loaded[i].Name != loaded[j].Name {
			return loaded[i].Name < loaded[j].Name
		}
		return loaded[i].Version < loaded[j].Version
	})
	return loaded, nil
}
