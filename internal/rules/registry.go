// Package rules implements AutoGlobe's versioned rule registry — the
// piece that turns the controller's rule bases from compile-time string
// constants into administrable data (ROADMAP item 3, the paper's "the
// fuzzy controller can be adapted by the administrator"). Every rule
// base is addressable by (name, version) and carries its source text,
// the parsed and vocabulary-validated rules, the compiled inference
// program, and a content hash. Versions are append-only: a push of new
// source yields the next version, a push of byte-identical source is
// idempotent and returns the version that already holds it. Exactly one
// version per name is active; activation is an explicit step so a
// candidate can be validated — and shadow-evaluated by the controller —
// before it takes over.
package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"autoglobe/internal/fuzzy"
)

// Entry is one immutable version of a rule base.
type Entry struct {
	// Name addresses the rule base, e.g. "serviceOverloaded" or
	// "select/placement" (selection bases live under "select/").
	Name string
	// Version is 1 for the first push of a name and increments per push.
	Version int
	// Hash is the SHA-256 of Source, hex encoded — the identity a
	// coordinator and an offline tool compare without shipping sources.
	Hash string
	// Source is the rule text exactly as pushed.
	Source string
	// Base is the parsed, validated and compiled rule base.
	Base *fuzzy.RuleBase
}

// Ref names one version for listings and journal records.
type Ref struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	Active  bool   `json:"active"`
	Rules   int    `json:"rules"`
}

// VocabFunc maps a rule-base name to the vocabulary its rules must be
// validated against. Returning nil rejects the name. The controller's
// convention: names under "select/" use the server-selection
// vocabulary, everything else the action-selection vocabulary.
type VocabFunc func(name string) *fuzzy.Vocabulary

// SelectionPrefix marks server-selection rule bases by name.
const SelectionPrefix = "select/"

// Hash returns the content hash of rule source text.
func Hash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// Registry holds the versions of every rule base. Safe for concurrent
// use; reads never block pushes for long (pushes parse and compile
// outside the lock).
type Registry struct {
	vocab VocabFunc

	mu     sync.RWMutex
	byName map[string][]*Entry // ascending by version
	active map[string]int      // name -> active version
}

// New builds an empty registry validating pushes through vocab.
func New(vocab VocabFunc) *Registry {
	if vocab == nil {
		panic("rules: nil VocabFunc")
	}
	return &Registry{
		vocab:  vocab,
		byName: make(map[string][]*Entry),
		active: make(map[string]int),
	}
}

// build parses, validates and compiles source for name — the
// validation-before-activation step every push goes through. No
// registry state is touched.
func (r *Registry) build(name, source string) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("rules: empty rule-base name")
	}
	if strings.ContainsAny(name, " \t\n") {
		return nil, fmt.Errorf("rules: invalid rule-base name %q", name)
	}
	vocab := r.vocab(name)
	if vocab == nil {
		return nil, fmt.Errorf("rules: no vocabulary for rule base %q", name)
	}
	parsed, err := fuzzy.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("rules: %s: %w", name, err)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("rules: %s: no rules in source", name)
	}
	base, err := fuzzy.NewRuleBase(name, vocab, parsed)
	if err != nil {
		return nil, fmt.Errorf("rules: %s: %w", name, err)
	}
	// Force the lazy compile now so a pathological base fails at push
	// time, never on the inference path.
	base.Compile()
	return &Entry{Name: name, Hash: Hash(source), Source: source, Base: base}, nil
}

// Validate parses, validates and compiles source for name without
// storing anything — the offline check fuzzyc exposes.
func (r *Registry) Validate(name, source string) (*Entry, error) {
	return r.build(name, source)
}

// Put stores source as the next version of name (or returns the
// existing version if an identical source is already stored). The new
// version is NOT activated; see Activate.
func (r *Registry) Put(name, source string) (*Entry, error) {
	e, err := r.build(name, source)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.byName[name] {
		if have.Hash == e.Hash {
			return have, nil
		}
	}
	e.Version = 1
	if n := len(r.byName[name]); n > 0 {
		e.Version = r.byName[name][n-1].Version + 1
	}
	r.byName[name] = append(r.byName[name], e)
	return e, nil
}

// PutVersion stores source under an explicit version — journal recovery
// replaying logged pushes. An existing (name, version) must carry the
// identical hash; anything else is a corruption signal.
func (r *Registry) PutVersion(name string, version int, source string) (*Entry, error) {
	if version < 1 {
		return nil, fmt.Errorf("rules: %s: invalid version %d", name, version)
	}
	e, err := r.build(name, source)
	if err != nil {
		return nil, err
	}
	e.Version = version
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.byName[name]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Version >= version })
	if i < len(vs) && vs[i].Version == version {
		if vs[i].Hash != e.Hash {
			return nil, fmt.Errorf("rules: %s@%d already stored with different hash", name, version)
		}
		return vs[i], nil
	}
	vs = append(vs, nil)
	copy(vs[i+1:], vs[i:])
	vs[i] = e
	r.byName[name] = vs
	return e, nil
}

// Get returns one version of a rule base. version 0 means the active
// version.
func (r *Registry) Get(name string, version int) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if version == 0 {
		version = r.active[name]
		if version == 0 {
			return nil, false
		}
	}
	for _, e := range r.byName[name] {
		if e.Version == version {
			return e, true
		}
	}
	return nil, false
}

// Active returns the active version of a rule base, if one is activated.
func (r *Registry) Active(name string) (*Entry, bool) {
	return r.Get(name, 0)
}

// Activate marks (name, version) as the active version and returns its
// entry. The version must have been Put first — activation never
// compiles, so it cannot fail halfway.
func (r *Registry) Activate(name string, version int) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.byName[name] {
		if e.Version == version {
			r.active[name] = version
			return e, nil
		}
	}
	return nil, fmt.Errorf("rules: no version %d of %q to activate", version, name)
}

// Names returns the registered rule-base names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns every stored version as a Ref, sorted by name then
// version — the payload of the ruleList wire reply.
func (r *Registry) List() []Ref {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Ref
	for _, name := range r.sortedNamesLocked() {
		for _, e := range r.byName[name] {
			out = append(out, Ref{
				Name:    e.Name,
				Version: e.Version,
				Hash:    e.Hash,
				Active:  r.active[name] == e.Version,
				Rules:   e.Base.Len(),
			})
		}
	}
	return out
}

// ActiveRefs returns one Ref per name with an activated version — what
// the coordinator journals so a restart can recover the active set.
func (r *Registry) ActiveRefs() []Ref {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Ref
	for _, name := range r.sortedNamesLocked() {
		v := r.active[name]
		if v == 0 {
			continue
		}
		for _, e := range r.byName[name] {
			if e.Version == v {
				out = append(out, Ref{Name: name, Version: v, Hash: e.Hash, Active: true, Rules: e.Base.Len()})
			}
		}
	}
	return out
}

func (r *Registry) sortedNamesLocked() []string {
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
