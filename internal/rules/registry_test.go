package rules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autoglobe/internal/fuzzy"
)

// testVocab accepts action-ish names with a tiny vocabulary and
// "select/"-prefixed names with a score vocabulary.
func testVocab(name string) *fuzzy.Vocabulary {
	if name == "rejected" {
		return nil
	}
	v := fuzzy.NewVocabulary()
	v.Add(fuzzy.StandardLoad("cpuLoad"))
	if strings.HasPrefix(name, SelectionPrefix) {
		v.Add(fuzzy.Applicability("score"))
	} else {
		v.Add(fuzzy.Applicability("scaleOut"))
	}
	return v
}

const goodSrc = "IF cpuLoad IS high THEN scaleOut IS applicable\n"
const goodSrc2 = "IF cpuLoad IS medium THEN scaleOut IS applicable\n"
const goodSelSrc = "IF cpuLoad IS low THEN score IS applicable\n"

func TestPutVersionsAndHash(t *testing.T) {
	r := New(testVocab)
	e1, err := r.Put("serviceOverloaded", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e1.Hash != Hash(goodSrc) || e1.Base == nil {
		t.Fatalf("entry = %+v", e1)
	}
	// Identical source is idempotent.
	again, err := r.Put("serviceOverloaded", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != 1 {
		t.Fatalf("idempotent put created version %d", again.Version)
	}
	// New source bumps the version.
	e2, err := r.Put("serviceOverloaded", goodSrc2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 2 {
		t.Fatalf("second put version = %d, want 2", e2.Version)
	}
}

func TestPutRejectsBadSource(t *testing.T) {
	r := New(testVocab)
	cases := map[string]string{
		"parse error":      "IF broken",
		"unknown variable": "IF nosuchvar IS high THEN scaleOut IS applicable",
		"unknown term":     "IF cpuLoad IS enormous THEN scaleOut IS applicable",
		"empty":            "# nothing here\n",
	}
	for what, src := range cases {
		if _, err := r.Put("serviceOverloaded", src); err == nil {
			t.Errorf("%s: accepted", what)
		}
	}
	if _, err := r.Put("rejected", goodSrc); err == nil {
		t.Error("name with no vocabulary accepted")
	}
	if _, err := r.Put("bad name", goodSrc); err == nil {
		t.Error("name with whitespace accepted")
	}
	if len(r.List()) != 0 {
		t.Errorf("rejected pushes left entries behind: %v", r.List())
	}
}

func TestActivateAndGet(t *testing.T) {
	r := New(testVocab)
	if _, ok := r.Active("serviceOverloaded"); ok {
		t.Fatal("empty registry has an active version")
	}
	e1, _ := r.Put("serviceOverloaded", goodSrc)
	e2, _ := r.Put("serviceOverloaded", goodSrc2)
	// Put does not activate.
	if _, ok := r.Active("serviceOverloaded"); ok {
		t.Fatal("put activated implicitly")
	}
	if _, err := r.Activate("serviceOverloaded", 99); err == nil {
		t.Fatal("activated a version that was never put")
	}
	if _, err := r.Activate("serviceOverloaded", e2.Version); err != nil {
		t.Fatal(err)
	}
	a, ok := r.Active("serviceOverloaded")
	if !ok || a.Version != e2.Version {
		t.Fatalf("active = %+v", a)
	}
	// Get by explicit version still reaches the older one.
	old, ok := r.Get("serviceOverloaded", e1.Version)
	if !ok || old.Hash != Hash(goodSrc) {
		t.Fatalf("old version lookup = %+v, %v", old, ok)
	}
	// Rollback: activating the older version again.
	if _, err := r.Activate("serviceOverloaded", e1.Version); err != nil {
		t.Fatal(err)
	}
	if a, _ := r.Active("serviceOverloaded"); a.Version != e1.Version {
		t.Fatalf("rollback failed: active = %+v", a)
	}
}

func TestPutVersionReplay(t *testing.T) {
	r := New(testVocab)
	if _, err := r.PutVersion("serviceOverloaded", 3, goodSrc); err != nil {
		t.Fatal(err)
	}
	// Same version, same hash: idempotent.
	if _, err := r.PutVersion("serviceOverloaded", 3, goodSrc); err != nil {
		t.Fatal(err)
	}
	// Same version, different content: corruption.
	if _, err := r.PutVersion("serviceOverloaded", 3, goodSrc2); err == nil {
		t.Fatal("conflicting replay accepted")
	}
	// Out-of-order inserts keep versions sorted.
	if _, err := r.PutVersion("serviceOverloaded", 1, goodSrc2); err != nil {
		t.Fatal(err)
	}
	refs := r.List()
	if len(refs) != 2 || refs[0].Version != 1 || refs[1].Version != 3 {
		t.Fatalf("List = %+v", refs)
	}
	// A later Put lands after the highest replayed version.
	e, err := r.Put("serviceOverloaded", goodSrc+goodSrc2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 4 {
		t.Fatalf("put after replay version = %d, want 4", e.Version)
	}
}

func TestListAndActiveRefs(t *testing.T) {
	r := New(testVocab)
	r.Put("serviceOverloaded", goodSrc)
	r.Put("select/placement", goodSelSrc)
	r.Activate("select/placement", 1)
	refs := r.List()
	if len(refs) != 2 {
		t.Fatalf("List = %+v", refs)
	}
	if refs[0].Name != "select/placement" || !refs[0].Active || refs[0].Rules != 1 {
		t.Fatalf("refs[0] = %+v", refs[0])
	}
	if refs[1].Name != "serviceOverloaded" || refs[1].Active {
		t.Fatalf("refs[1] = %+v", refs[1])
	}
	active := r.ActiveRefs()
	if len(active) != 1 || active[0].Name != "select/placement" {
		t.Fatalf("ActiveRefs = %+v", active)
	}
}

func TestDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New(testVocab)
	e1, _ := r.Put("serviceOverloaded", goodSrc)
	e2, _ := r.Put("serviceOverloaded", goodSrc2)
	sel, _ := r.Put("select/placement", goodSelSrc)
	for _, e := range []*Entry{e1, e2, sel} {
		if err := WriteEntry(dir, e); err != nil {
			t.Fatal(err)
		}
	}
	// The selection base landed in a subdirectory.
	if _, err := os.Stat(filepath.Join(dir, "select", "placement@v1.rules")); err != nil {
		t.Fatal(err)
	}

	r2 := New(testVocab)
	loaded, err := r2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d entries, want 3: %+v", len(loaded), loaded)
	}
	// Highest version of each name is active after a plain load.
	a, ok := r2.Active("serviceOverloaded")
	if !ok || a.Version != 2 || a.Hash != e2.Hash {
		t.Fatalf("active after load = %+v", a)
	}
	if a, ok := r2.Active("select/placement"); !ok || a.Version != 1 {
		t.Fatalf("selection active after load = %+v", a)
	}
	// Sources survived byte-identically.
	got, _ := r2.Get("serviceOverloaded", 1)
	if got.Source != goodSrc {
		t.Fatalf("source round trip changed: %q", got.Source)
	}
	// The returned refs carry the activation outcome — callers route
	// active bases into swap points off these refs alone.
	for _, ref := range loaded {
		wantActive := ref.Name == "select/placement" || ref.Version == 2
		if ref.Active != wantActive {
			t.Errorf("loaded ref %s@v%d Active=%v, want %v", ref.Name, ref.Version, ref.Active, wantActive)
		}
	}
}

func TestLoadDirMissingAndBad(t *testing.T) {
	r := New(testVocab)
	loaded, err := r.LoadDir(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || len(loaded) != 0 {
		t.Fatalf("missing dir: loaded=%v err=%v", loaded, err)
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "noversion.rules"), []byte(goodSrc), 0o644)
	if _, err := New(testVocab).LoadDir(dir); err == nil {
		t.Fatal("file without @v<version> accepted")
	}
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "serviceOverloaded@v1.rules"), []byte("IF broken"), 0o644)
	if _, err := New(testVocab).LoadDir(dir2); err == nil {
		t.Fatal("unparseable rule file accepted")
	}
}

func TestValidateDoesNotStore(t *testing.T) {
	r := New(testVocab)
	if _, err := r.Validate("serviceOverloaded", goodSrc); err != nil {
		t.Fatal(err)
	}
	if len(r.List()) != 0 {
		t.Fatal("Validate stored an entry")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New(testVocab)
	r.Put("serviceOverloaded", goodSrc)
	r.Activate("serviceOverloaded", 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Put("serviceOverloaded", goodSrc2)
			r.Activate("serviceOverloaded", 2)
			r.Activate("serviceOverloaded", 1)
		}
	}()
	for i := 0; i < 200; i++ {
		if _, ok := r.Active("serviceOverloaded"); !ok {
			t.Error("active version vanished")
		}
		r.List()
	}
	<-done
}
