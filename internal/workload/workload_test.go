package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfileInterpolation(t *testing.T) {
	p := MustProfile("t", Point{0, 0}, Point{100, 1})
	if got := p.At(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(50) = %g, want 0.5", got)
	}
	if got := p.At(0); got != 0 {
		t.Errorf("At(0) = %g, want 0", got)
	}
	if got := p.At(100); got != 1 {
		t.Errorf("At(100) = %g, want 1", got)
	}
}

func TestProfileWrapsMidnight(t *testing.T) {
	// Last anchor 23:00 value 1, first anchor 01:00 value 0: midnight is
	// halfway between them.
	p := MustProfile("t", Point{hm(1, 0), 0}, Point{hm(23, 0), 1})
	if got := p.At(0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(midnight) = %g, want 0.5", got)
	}
	// Periodicity: any minute equals the same minute a day later, and
	// negative minutes wrap backwards.
	if p.At(90) != p.At(90+MinutesPerDay) {
		t.Error("profile is not periodic")
	}
	if p.At(-10) != p.At(MinutesPerDay-10) {
		t.Error("negative minutes do not wrap")
	}
}

func TestProfileSinglePoint(t *testing.T) {
	p := Flat(0.42)
	for _, m := range []int{0, 500, 1439} {
		if got := p.At(m); got != 0.42 {
			t.Errorf("Flat.At(%d) = %g", m, got)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile("t"); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewProfile("t", Point{-1, 0}); err == nil {
		t.Error("negative minute accepted")
	}
	if _, err := NewProfile("t", Point{0, 0}, Point{0, 1}); err == nil {
		t.Error("duplicate minute accepted")
	}
	if _, err := NewProfile("t", Point{0, -0.1}); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := NewProfile("t", Point{MinutesPerDay, 0}); err == nil {
		t.Error("minute 1440 accepted")
	}
}

// TestFigure10Shapes checks the qualitative shape of the paper's Figure
// 10: the LES (interactive) curve rises at eight o'clock, has three
// workday peaks and a quiet night; the BW (batch) curve is high during
// the night and low during the day.
func TestFigure10Shapes(t *testing.T) {
	les := Interactive(1)
	if les.At(hm(3, 0)) > 0.1 {
		t.Error("interactive: night load should be near zero")
	}
	if !(les.At(hm(9, 30)) > les.At(hm(7, 0))) {
		t.Error("interactive: load must rise when employees start at eight")
	}
	morning, lunch, beforeLeave := les.At(hm(9, 30)), les.At(hm(13, 0)), les.At(hm(16, 15))
	if !(morning > lunch && beforeLeave > lunch) {
		t.Error("interactive: expected peaks around the lunch dip")
	}
	if p := les.Peak(); math.Abs(p-1) > 1e-9 {
		t.Errorf("interactive peak = %g, want 1", p)
	}

	bw := BatchNight(1)
	if !(bw.At(hm(2, 0)) > 0.9) {
		t.Error("batch: nightly batch window should be near peak")
	}
	if !(bw.At(hm(10, 0)) < 0.3) {
		t.Error("batch: daytime load should be low")
	}
	// The two curves are anti-correlated at representative hours.
	if !(les.At(hm(10, 0)) > bw.At(hm(10, 0)) && bw.At(hm(2, 0)) > les.At(hm(2, 0))) {
		t.Error("Figure 10: LES and BW curves must alternate dominance day/night")
	}
}

func TestInteractivePeakScaling(t *testing.T) {
	p := Interactive(0.72)
	if got := p.Peak(); math.Abs(got-0.72) > 1e-9 {
		t.Errorf("Peak = %g, want 0.72", got)
	}
}

func TestProfileShift(t *testing.T) {
	p := MustProfile("t", Point{hm(9, 0), 1}, Point{hm(3, 0), 0})
	s := p.Shift("shifted", 60)
	if got := s.At(hm(10, 0)); got != 1 {
		t.Errorf("shifted peak at 10:00 = %g, want 1", got)
	}
	// Negative shifts and midnight wrap.
	w := p.Shift("wrapped", -hm(10, 0))
	if got := w.At(hm(23, 0)); got != 1 {
		t.Errorf("wrapped peak at 23:00 = %g, want 1", got)
	}
}

func TestProfileScale(t *testing.T) {
	p := Flat(0.5).Scale("half", 0.5)
	if got := p.At(0); got != 0.25 {
		t.Errorf("scaled = %g, want 0.25", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative scale did not panic")
		}
	}()
	Flat(1).Scale("bad", -1)
}

func TestFromSeries(t *testing.T) {
	series := make([]float64, MinutesPerDay)
	for m := range series {
		series[m] = float64(m) / MinutesPerDay
	}
	p, err := FromSeries("measured", series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(600); math.Abs(got-600.0/MinutesPerDay) > 0.01 {
		t.Errorf("replayed value at 600 = %g", got)
	}
	if _, err := FromSeries("empty", nil, 10); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := FromSeries("neg", []float64{-1}, 10); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FromSeries("long", make([]float64, MinutesPerDay+1), 10); err == nil {
		t.Error("overlong series accepted")
	}
}

// TestReplayLoop: the §7 loop — capture a day profile from an archive
// and replay it as a workload profile.
func TestReplayLoop(t *testing.T) {
	g := PaperGenerator(1.0, 0)
	series := make([]float64, MinutesPerDay)
	for m := range series {
		series[m] = g.ActiveFraction("LES", m)
	}
	replayed, err := FromSeries("les-replay", series, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The replay tracks the original within interpolation error.
	for _, m := range []int{0, hm(9, 15), hm(13, 0), hm(18, 0)} {
		if math.Abs(replayed.At(m)-g.ActiveFraction("LES", m)) > 0.05 {
			t.Errorf("replay at %d = %g, original %g", m, replayed.At(m), g.ActiveFraction("LES", m))
		}
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	j := Jitter{Seed: 42, Amplitude: 0.05}
	a := j.Factor("FI", 100)
	b := j.Factor("FI", 100)
	if a != b {
		t.Error("jitter is not deterministic")
	}
	if j.Factor("FI", 100) == j.Factor("LES", 100) {
		t.Error("jitter should differ across entities")
	}
	f := func(minute int) bool {
		v := j.Factor("FI", minute)
		return v >= 0.95-1e-9 && v <= 1.05+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (Jitter{}).Factor("x", 1) != 1 {
		t.Error("zero-amplitude jitter must be exactly 1")
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	j := Jitter{Seed: 7, Amplitude: 0.05}
	sum := 0.0
	n := 10000
	for i := 0; i < n; i++ {
		sum += j.Factor("FI", i)
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.005 {
		t.Errorf("jitter mean = %g, want ~1", mean)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Jitter{}, Source{Service: "", Profile: Flat(1)}); err == nil {
		t.Error("empty service accepted")
	}
	if _, err := NewGenerator(Jitter{}, Source{Service: "a"}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := NewGenerator(Jitter{}, Source{Service: "a", Profile: Flat(1), Users: -1}); err == nil {
		t.Error("negative users accepted")
	}
	if _, err := NewGenerator(Jitter{},
		Source{Service: "a", Profile: Flat(1)},
		Source{Service: "a", Profile: Flat(1)}); err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestBursts(t *testing.T) {
	g := MustGenerator(Jitter{}, Source{Service: "s", Users: 100, Profile: Flat(0.5)})
	if err := g.AddBurst("s", Burst{Start: 100, Length: 10, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	if got := g.ActiveUsers("s", 99); got != 50 {
		t.Errorf("before burst = %g, want 50", got)
	}
	if got := g.ActiveUsers("s", 100); got != 100 {
		t.Errorf("during burst = %g, want 100", got)
	}
	if got := g.ActiveUsers("s", 110); got != 50 {
		t.Errorf("after burst = %g, want 50", got)
	}
	// Stacked bursts multiply.
	g.AddBurst("s", Burst{Start: 105, Length: 2, Factor: 1.5})
	if got := g.ActiveUsers("s", 105); got != 150 {
		t.Errorf("stacked bursts = %g, want 150", got)
	}
	if err := g.AddBurst("ghost", Burst{Start: 0, Length: 1, Factor: 2}); err == nil {
		t.Error("burst on unknown service accepted")
	}
	if err := g.AddBurst("s", Burst{Start: 0, Length: 0, Factor: 2}); err == nil {
		t.Error("zero-length burst accepted")
	}
	if err := g.AddBurst("s", Burst{Start: 0, Length: 1, Factor: 0}); err == nil {
		t.Error("zero-factor burst accepted")
	}
}

func TestGeneratorActiveUsers(t *testing.T) {
	g := MustGenerator(Jitter{}, Source{Service: "FI", Users: 600, Profile: Flat(0.5)})
	if got := g.ActiveUsers("FI", 0); math.Abs(got-300) > 1e-9 {
		t.Errorf("ActiveUsers = %g, want 300", got)
	}
	if got := g.ActiveUsers("ghost", 0); got != 0 {
		t.Errorf("unknown service ActiveUsers = %g, want 0", got)
	}
}

// TestPaperGeneratorCalibration: at multiplier 1.0 the peak utilization
// of a fully loaded standard blade stays inside the paper's 60–80 % main
// activity band (ignoring noise).
func TestPaperGeneratorCalibration(t *testing.T) {
	g := PaperGenerator(1.0, 0)
	// A PI-1 blade initially carries 150 LES users. Peak active fraction
	// is DefaultPeakActivity, so peak utilization from users alone is
	// 150·peak/150 = peak.
	peak := 0.0
	for m := 0; m < MinutesPerDay; m++ {
		if v := g.ActiveFraction("LES", m); v > peak {
			peak = v
		}
	}
	util := peak + 0.05 // plus the app server base load
	if util < 0.60 || util > 0.80 {
		t.Errorf("baseline peak blade utilization = %g, outside the paper's 60–80%% band", util)
	}
	// Table 4 populations scale with the multiplier.
	g115 := PaperGenerator(1.15, 0)
	if got, want := g115.Users("FI"), 600*1.15; math.Abs(got-want) > 1e-9 {
		t.Errorf("FI users at 115%% = %g, want %g", got, want)
	}
}

func TestPaperProfilesCoverAllServices(t *testing.T) {
	ps := PaperProfiles(0.72)
	for _, svc := range []string{"FI", "LES", "PP", "HR", "CRM", "BW"} {
		if ps[svc] == nil {
			t.Errorf("no profile for %s", svc)
		}
	}
	// Phase shifts preserve the peak value.
	if math.Abs(ps["FI"].Peak()-ps["LES"].Peak()) > 1e-9 {
		t.Error("phase shift changed the peak")
	}
}

func TestProfileMean(t *testing.T) {
	if got := Flat(0.3).Mean(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("Mean = %g, want 0.3", got)
	}
}

func TestDefaultCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if cm.DBShare <= cm.CIShare {
		t.Error("database share must exceed central-instance share")
	}
}
