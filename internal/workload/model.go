package workload

import (
	"fmt"

	"autoglobe/internal/service"
)

// DefaultPeakActivity is the fraction of a service's user population
// active simultaneously during the main-activity peak. The paper
// dimensions hardware so that a standard blade handles at most 150 users
// of one service and runs "between 60 % and 80 % CPU during main
// activity in order to retain reserves for unpredictable load bursts";
// with capacities exactly matching Table 4 populations, a peak activity
// of 0.74 puts the baseline peak utilization at 79 % including base
// load — the top of the paper's band, so that 5 % more users push the
// sustained morning peak past the 80 % overload level ("if we increase
// the number of users by 5%, the installation immediately becomes
// overloaded").
const DefaultPeakActivity = 0.74

// CostModel captures the request path of the simulation: "First, a
// request increases the load of the affected service host for a short
// period. Before handling the request in the database, the lock
// management of the central instance (CI) is requested. Finally, the
// database sends the answer back to the application server."
//
// DBShare and CIShare are the fractions of the application-server demand
// that are mirrored, scaled by the service's RequestWeight, onto the
// subsystem's database and central instance.
type CostModel struct {
	DBShare float64
	CIShare float64
}

// DefaultCostModel returns the cost model used in the paper-shaped
// simulations. The database carries a substantial share of request work;
// the central instance only does lock bookkeeping.
func DefaultCostModel() CostModel {
	return CostModel{DBShare: 0.20, CIShare: 0.04}
}

// Jitter is a deterministic multiplicative noise source: load curves in
// real systems are not perfectly smooth, and short load peaks "are quite
// common" — the load monitoring system's watchTime exists to filter
// them. Jitter produces reproducible per-(entity, minute) factors.
type Jitter struct {
	Seed      uint64
	Amplitude float64 // e.g. 0.05 for ±5 %
}

// Factor returns the noise factor for an entity at a minute, in
// [1−Amplitude, 1+Amplitude]. The same (seed, entity, minute) always
// yields the same factor.
func (j Jitter) Factor(entity string, minute int) float64 {
	if j.Amplitude == 0 {
		return 1
	}
	h := j.Seed ^ 0x9e3779b97f4a7c15
	for _, c := range entity {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= uint64(minute) * 0xbf58476d1ce4e5b9
	// xorshift* finalizer
	h ^= h >> 12
	h ^= h << 25
	h ^= h >> 27
	h *= 0x2545f4914f6cdd1d
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	return 1 + j.Amplitude*(2*u-1)
}

// Burst is a transient load spike on top of the diurnal pattern — the
// "unpredictable load bursts" the paper sizes its 60–80 % operating
// band for. It multiplies the active users during [Start, Start+Length)
// in absolute simulation minutes.
type Burst struct {
	Start  int
	Length int
	Factor float64
}

// active reports whether the burst covers the minute.
func (b Burst) active(minute int) bool {
	return minute >= b.Start && minute < b.Start+b.Length && b.Length > 0
}

// Source describes the workload of one service: its user population (or,
// for batch services, its job count), its activity profile, and its
// burst behaviour.
type Source struct {
	// Service names the service this source drives.
	Service string
	// Users is the population size (jobs for batch services).
	Users float64
	// Profile is the diurnal activity curve.
	Profile *Profile
	// Bursts are transient spikes layered on the profile.
	Bursts []Burst
}

// Generator produces the per-minute demand of all services.
type Generator struct {
	sources map[string]Source
	jitter  Jitter
}

// NewGenerator builds a generator over the given sources.
func NewGenerator(jitter Jitter, sources ...Source) (*Generator, error) {
	g := &Generator{sources: make(map[string]Source, len(sources)), jitter: jitter}
	for _, s := range sources {
		if s.Service == "" {
			return nil, fmt.Errorf("workload: source with empty service name")
		}
		if s.Profile == nil {
			return nil, fmt.Errorf("workload: source %q has no profile", s.Service)
		}
		if s.Users < 0 {
			return nil, fmt.Errorf("workload: source %q has negative users", s.Service)
		}
		if _, dup := g.sources[s.Service]; dup {
			return nil, fmt.Errorf("workload: duplicate source %q", s.Service)
		}
		g.sources[s.Service] = s
	}
	return g, nil
}

// MustGenerator is NewGenerator panicking on error.
func MustGenerator(jitter Jitter, sources ...Source) *Generator {
	g, err := NewGenerator(jitter, sources...)
	if err != nil {
		panic(err)
	}
	return g
}

// ActiveUsers returns the number of users of the service active at the
// given simulation minute, including noise and bursts.
func (g *Generator) ActiveUsers(svc string, minute int) float64 {
	s, ok := g.sources[svc]
	if !ok {
		return 0
	}
	return s.Users * g.ActiveFraction(svc, minute) * g.jitter.Factor(svc, minute)
}

// ActiveFraction returns the activity fraction (profile value times any
// active burst factor, without noise) for a service.
func (g *Generator) ActiveFraction(svc string, minute int) float64 {
	s, ok := g.sources[svc]
	if !ok {
		return 0
	}
	v := s.Profile.At(minute)
	for _, b := range s.Bursts {
		if b.active(minute) {
			v *= b.Factor
		}
	}
	return v
}

// AddBurst layers a transient spike onto a service's workload. It
// returns an error for unknown services or non-positive parameters.
func (g *Generator) AddBurst(svc string, b Burst) error {
	s, ok := g.sources[svc]
	if !ok {
		return fmt.Errorf("workload: no source %q", svc)
	}
	if b.Length <= 0 || b.Factor <= 0 {
		return fmt.Errorf("workload: burst on %q needs positive length and factor", svc)
	}
	s.Bursts = append(s.Bursts, b)
	g.sources[svc] = s
	return nil
}

// Services returns the names of all sources.
func (g *Generator) Services() []string {
	out := make([]string, 0, len(g.sources))
	for n := range g.sources {
		out = append(out, n)
	}
	return out
}

// Users returns the population of a service.
func (g *Generator) Users(svc string) float64 { return g.sources[svc].Users }

// PaperProfiles returns the activity profile of every application
// service in the paper's installation. LES, FI and PP follow the
// interactive workday pattern of Figure 10 (with small phase shifts so
// department peaks do not align perfectly); HR and CRM are interactive
// with the same shape; BW follows the nightly batch pattern.
func PaperProfiles(peak float64) map[string]*Profile {
	base := Interactive(peak)
	return map[string]*Profile{
		"LES": base,
		"FI":  base.Shift("interactive-fi", 20),
		"PP":  base.Shift("interactive-pp", 40),
		"HR":  base.Shift("interactive-hr", -15),
		"CRM": base.Shift("interactive-crm", 30),
		"BW":  BatchNight(peak),
	}
}

// PaperGenerator builds the workload generator of the paper's simulation
// at the given user multiplier: Table 4 populations scaled by multiplier
// (for BW the paper scales the load per batch job by the same factor,
// which is arithmetically identical), paper profiles, ±3 % noise.
func PaperGenerator(multiplier float64, seed uint64) *Generator {
	profiles := PaperProfiles(DefaultPeakActivity)
	users := service.PaperUsers() // Table 4
	sources := make([]Source, 0, len(users))
	for svc, u := range users {
		sources = append(sources, Source{Service: svc, Users: u * multiplier, Profile: profiles[svc]})
	}
	return MustGenerator(Jitter{Seed: seed, Amplitude: 0.03}, sources...)
}
