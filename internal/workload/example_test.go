package workload_test

import (
	"fmt"

	"autoglobe/internal/workload"
)

// ExampleGenerator shows the paper's Figure 10 curves: the LES workday
// and the nocturnal BW batch window.
func ExampleGenerator() {
	g := workload.PaperGenerator(1.0, 0)
	for _, hour := range []int{2, 10} {
		fmt.Printf("%02d:00  LES %.2f  BW %.2f\n",
			hour, g.ActiveFraction("LES", hour*60), g.ActiveFraction("BW", hour*60))
	}
	// Output:
	// 02:00  LES 0.03  BW 0.72
	// 10:00  LES 0.74  BW 0.11
}
