// Package workload generates the synthetic load the simulation studies
// drive AutoGlobe with: diurnal activity profiles ("load curves generated
// by simulated services follow predetermined patterns that can be
// observed in many companies running SAP software"), user populations per
// service, the request cost model (application server → central instance
// → database), and batch job loads for the Business Warehouse.
package workload

import (
	"fmt"
	"sort"
)

// MinutesPerDay is the length of the simulated day.
const MinutesPerDay = 24 * 60

// Point anchors an activity value at a minute of the day.
type Point struct {
	Minute int     // 0 … 1439
	Value  float64 // activity fraction, usually in [0, 1]
}

// Profile is a piecewise-linear, 24h-periodic activity curve. The value
// at a time between anchor points is linearly interpolated; the curve
// wraps around midnight.
type Profile struct {
	Name   string
	points []Point
}

// NewProfile builds a profile from anchor points. Points need not be
// sorted; duplicate minutes are an error.
func NewProfile(name string, points ...Point) (*Profile, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: profile %q has no points", name)
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Minute < ps[j].Minute })
	for i, p := range ps {
		if p.Minute < 0 || p.Minute >= MinutesPerDay {
			return nil, fmt.Errorf("workload: profile %q: minute %d out of range", name, p.Minute)
		}
		if i > 0 && ps[i-1].Minute == p.Minute {
			return nil, fmt.Errorf("workload: profile %q: duplicate minute %d", name, p.Minute)
		}
		if p.Value < 0 {
			return nil, fmt.Errorf("workload: profile %q: negative value at minute %d", name, p.Minute)
		}
	}
	return &Profile{Name: name, points: ps}, nil
}

// MustProfile is NewProfile panicking on error, for profile literals.
func MustProfile(name string, points ...Point) *Profile {
	p, err := NewProfile(name, points...)
	if err != nil {
		panic(err)
	}
	return p
}

// At returns the interpolated activity at the given minute of the
// simulation. Minutes beyond one day wrap (the curve is periodic);
// negative minutes wrap backwards.
func (p *Profile) At(minute int) float64 {
	m := ((minute % MinutesPerDay) + MinutesPerDay) % MinutesPerDay
	n := len(p.points)
	if n == 1 {
		return p.points[0].Value
	}
	// Find the first anchor at or after m.
	i := sort.Search(n, func(i int) bool { return p.points[i].Minute >= m })
	var a, b Point
	switch i {
	case 0:
		// Before the first anchor: interpolate from the last anchor
		// across midnight.
		a, b = p.points[n-1], p.points[0]
		return lerpWrapped(a, b, m)
	case n:
		// After the last anchor: wrap to the first.
		a, b = p.points[n-1], p.points[0]
		return lerpWrapped(a, b, m)
	default:
		a, b = p.points[i-1], p.points[i]
		if a.Minute == m {
			return a.Value
		}
		t := float64(m-a.Minute) / float64(b.Minute-a.Minute)
		return a.Value + t*(b.Value-a.Value)
	}
}

// lerpWrapped interpolates between the day's last anchor a and first
// anchor b across midnight for minute m (either after a or before b).
func lerpWrapped(a, b Point, m int) float64 {
	span := MinutesPerDay - a.Minute + b.Minute
	if span == 0 {
		return a.Value
	}
	var off int
	if m >= a.Minute {
		off = m - a.Minute
	} else {
		off = MinutesPerDay - a.Minute + m
	}
	t := float64(off) / float64(span)
	return a.Value + t*(b.Value-a.Value)
}

// Peak returns the maximum value over the day (sampled per minute).
func (p *Profile) Peak() float64 {
	peak := 0.0
	for m := 0; m < MinutesPerDay; m++ {
		if v := p.At(m); v > peak {
			peak = v
		}
	}
	return peak
}

// Mean returns the mean value over the day (sampled per minute).
func (p *Profile) Mean() float64 {
	sum := 0.0
	for m := 0; m < MinutesPerDay; m++ {
		sum += p.At(m)
	}
	return sum / MinutesPerDay
}

func hm(h, m int) int { return h*60 + m }

// Interactive returns the paper's interactive workday pattern (Figure 10,
// LES curve): work starts at eight o'clock; three peaks — one in the
// morning, one before midday and one before the employees leave — and a
// quiet night. The curve is normalized so its peak is peak (the fraction
// of the user population active simultaneously; the paper dimensions
// hardware so blades run at 60–80 % CPU during main activity).
func Interactive(peak float64) *Profile {
	scale := peak / 1.0
	return MustProfile("interactive",
		Point{hm(0, 0), 0.04 * scale},
		Point{hm(6, 0), 0.04 * scale},
		Point{hm(8, 0), 0.45 * scale},   // employees start to work
		Point{hm(9, 15), 1.00 * scale},  // morning peak
		Point{hm(10, 15), 1.00 * scale}, // … sustained through mid-morning
		Point{hm(11, 0), 0.82 * scale},
		Point{hm(11, 45), 0.97 * scale}, // peak before midday
		Point{hm(13, 0), 0.62 * scale},  // lunch dip
		Point{hm(14, 30), 0.80 * scale},
		Point{hm(16, 15), 0.95 * scale}, // peak before leaving
		Point{hm(18, 0), 0.40 * scale},
		Point{hm(20, 0), 0.10 * scale},
		Point{hm(22, 0), 0.04 * scale},
	)
}

// BatchNight returns the paper's Business Warehouse pattern (Figure 10,
// BW curve): several heavy-load batch jobs during the night, few user
// requests on aggregated data during the day.
func BatchNight(peak float64) *Profile {
	scale := peak / 1.0
	return MustProfile("batch-night",
		Point{hm(0, 0), 1.00 * scale}, // nightly batch window in full swing
		Point{hm(4, 30), 0.95 * scale},
		Point{hm(6, 0), 0.30 * scale}, // batch window ends
		Point{hm(8, 0), 0.12 * scale},
		Point{hm(12, 0), 0.18 * scale}, // few daytime queries
		Point{hm(17, 0), 0.12 * scale},
		Point{hm(20, 30), 0.35 * scale},
		Point{hm(22, 0), 0.90 * scale}, // batch window opens
		Point{hm(23, 0), 1.00 * scale},
	)
}

// Flat returns a constant profile, useful in tests and for services with
// time-independent load.
func Flat(v float64) *Profile {
	return MustProfile("flat", Point{0, v})
}

// Shift returns a copy of the profile shifted by the given number of
// minutes (positive = later in the day), wrapping around midnight.
// Department peaks in real installations are staggered; the paper's
// simulation uses such phase shifts between services.
func (p *Profile) Shift(name string, minutes int) *Profile {
	pts := make([]Point, 0, len(p.points))
	for _, pt := range p.points {
		pts = append(pts, Point{
			Minute: ((pt.Minute+minutes)%MinutesPerDay + MinutesPerDay) % MinutesPerDay,
			Value:  pt.Value,
		})
	}
	return MustProfile(name, pts...)
}

// Scale returns a copy with every value multiplied by factor (>= 0).
func (p *Profile) Scale(name string, factor float64) *Profile {
	if factor < 0 {
		panic("workload: negative scale factor")
	}
	pts := make([]Point, 0, len(p.points))
	for _, pt := range p.points {
		pts = append(pts, Point{Minute: pt.Minute, Value: pt.Value * factor})
	}
	return MustProfile(name, pts...)
}

// FromSeries builds a profile from a measured per-minute series (e.g.
// the load archive's aggregated day profile), anchoring one point per
// stride minutes. This closes the loop the paper's §7 envisions:
// observe a landscape, extract its daily pattern, and replay it against
// candidate configurations.
func FromSeries(name string, series []float64, stride int) (*Profile, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: empty series for profile %q", name)
	}
	if len(series) > MinutesPerDay {
		return nil, fmt.Errorf("workload: series for %q has %d samples, max %d", name, len(series), MinutesPerDay)
	}
	if stride <= 0 {
		stride = 15
	}
	var pts []Point
	for m := 0; m < len(series); m += stride {
		v := series[m]
		if v < 0 {
			return nil, fmt.Errorf("workload: negative sample at minute %d", m)
		}
		pts = append(pts, Point{Minute: m, Value: v})
	}
	return NewProfile(name, pts...)
}
