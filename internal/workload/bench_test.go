package workload

import "testing"

func BenchmarkActiveUsers(b *testing.B) {
	g := PaperGenerator(1.15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ActiveUsers("LES", i%MinutesPerDay)
	}
}

func BenchmarkProfileAt(b *testing.B) {
	p := Interactive(0.74)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.At(i % MinutesPerDay)
	}
}
