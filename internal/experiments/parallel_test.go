package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != 1 {
		t.Errorf("resolveWorkers(0) = %d, want 1", got)
	}
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d, want 1", got)
	}
	if got := resolveWorkers(7); got != 7 {
		t.Errorf("resolveWorkers(7) = %d, want 7", got)
	}
	if got := resolveWorkers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(-1) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForEachIndexRunsAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		err := forEachIndex(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: job %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachIndexEmpty(t *testing.T) {
	if err := forEachIndex(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0: unexpected error %v", err)
	}
}

// TestForEachIndexFirstError checks that among multiple failing jobs the
// error of the lowest-indexed one wins, matching the sequential loop.
func TestForEachIndexFirstError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := forEachIndex(workers, 20, func(i int) error {
			if i >= 5 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 5 failed" {
			t.Errorf("workers=%d: err = %v, want job 5 failed", workers, err)
		}
	}
}

// TestForEachIndexStopsDispatch checks that after a failure no fresh
// jobs are started (beyond those already in flight).
func TestForEachIndexStopsDispatch(t *testing.T) {
	const n = 10000
	var started atomic.Int32
	err := forEachIndex(2, n, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := started.Load(); got >= n {
		t.Errorf("all %d jobs ran despite early failure", got)
	}
}

func TestSweepCut(t *testing.T) {
	c := newSweepCut(2)
	if c.skip(0, 150) || c.skip(1, 100) {
		t.Fatal("fresh cut must not skip anything")
	}
	c.overloaded(0, 120)
	if !c.skip(0, 125) {
		t.Error("pct above the cut must be skipped")
	}
	if c.skip(0, 120) || c.skip(0, 115) {
		t.Error("pct at or below the cut must not be skipped")
	}
	if c.skip(1, 125) {
		t.Error("cut of group 0 must not affect group 1")
	}
	c.overloaded(0, 130) // higher than the cut: must not raise it
	if c.skip(0, 120) {
		t.Error("cut must only move downward")
	}
	c.overloaded(0, 110) // lower: must lower the cut
	if !c.skip(0, 115) {
		t.Error("cut must follow the lowest overloaded pct")
	}
}

// TestTable7ParallelDeterminism is the ISSUE's determinism guarantee:
// the parallel sweep must be byte-identical to the sequential sweep,
// across several seeds.
func TestTable7ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	opts := Table7Options{Hours: 24, From: 100, To: 110}
	for _, seed := range []uint64{1, 2, 3} {
		opts.Seed = seed
		opts.Workers = 0
		seq, err := Table7(opts)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		opts.Workers = 8
		par, err := Table7(opts)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("seed %d: parallel result differs from sequential\nseq: %+v\npar: %+v", seed, seq, par)
		}
		if seq.String() != par.String() {
			t.Errorf("seed %d: parallel rendering differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, seq, par)
		}
	}
}

// TestTable7StabilityParallelDeterminism checks the shared-grid
// multi-seed path against per-seed sequential sweeps.
func TestTable7StabilityParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	seeds := []uint64{1, 2, 3}
	opts := Table7Options{Hours: 24, From: 100, To: 105}
	seq, err := Table7Stability(seeds, opts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	opts.Workers = 8
	par, err := Table7Stability(seeds, opts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel stability differs from sequential\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel rendering differs\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestTable7WorkersNegative checks the GOMAXPROCS convention end to end.
func TestTable7WorkersNegative(t *testing.T) {
	opts := Table7Options{Hours: 24, From: 100, To: 100, Workers: -1}
	par, err := Table7(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 0
	seq, err := Table7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Workers: -1 differs from sequential\nseq: %+v\npar: %+v", seq, par)
	}
}
