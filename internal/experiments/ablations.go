package experiments

import (
	"fmt"
	"strings"

	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
)

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Variant     string
	WorstPerDay float64
	TotalPerDay float64
	Actions     int
	Alerts      int
}

// AblationResult compares variants of one design choice.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

func (r AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", r.Name)
	fmt.Fprintf(&sb, "  %-28s %14s %14s %8s %8s\n", "variant", "worst ovl/day", "total ovl/day", "actions", "alerts")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-28s %14.1f %14.1f %8d %8d\n",
			row.Variant, row.WorstPerDay, row.TotalPerDay, row.Actions, row.Alerts)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ablate runs every variant of one design choice and tabulates the
// outcome. The variant runs are fully independent simulator runs, so
// they fan out across one worker per core (see parallel.go); rows are
// written into index-addressed slots, keeping the table byte-identical
// to the sequential loop regardless of scheduling.
func ablate(name string, hours int, variants []struct {
	label string
	tweak func(*simulator.Config)
}) (AblationResult, error) {
	res := AblationResult{Name: name}
	rows := make([]AblationRow, len(variants))
	err := forEachIndex(resolveWorkers(-1), len(variants), func(i int) error {
		v := variants[i]
		cfg := simulator.PaperConfig(service.FullMobility, 1.25)
		cfg.Hours = hours
		v.tweak(&cfg)
		sim, err := simulator.New(cfg)
		if err != nil {
			return err
		}
		run, err := sim.Run()
		if err != nil {
			return err
		}
		_, worst := run.WorstOverloadPerDay()
		rows[i] = AblationRow{
			Variant:     v.label,
			WorstPerDay: worst,
			TotalPerDay: run.TotalOverloadPerDay(),
			Actions:     len(run.ExecutedActions()),
			Alerts:      run.Alerts(),
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// AblateDefuzzifier compares the paper's leftmost-maximum
// defuzzification against mean-of-maximum and centroid.
func AblateDefuzzifier(hours int) (AblationResult, error) {
	return ablate("defuzzification method (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"leftmost-maximum (paper)", func(c *simulator.Config) {}},
		{"mean-of-maximum", func(c *simulator.Config) { c.Controller.Defuzzifier = fuzzy.MeanOfMax{} }},
		{"centroid", func(c *simulator.Config) { c.Controller.Defuzzifier = fuzzy.Centroid{} }},
	})
}

// AblateInference compares the paper's max–min inference against
// max–product.
func AblateInference(hours int) (AblationResult, error) {
	return ablate("inference method (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"max-min (paper)", func(c *simulator.Config) {}},
		{"max-product", func(c *simulator.Config) { c.Controller.Inference = fuzzy.MaxProduct }},
	})
}

// AblateWatchTime compares reacting immediately against the paper's
// 10-minute observation window — the guard against "an unsettled and
// instable system".
func AblateWatchTime(hours int) (AblationResult, error) {
	return ablate("overload watchTime (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"react immediately (0 min)", func(c *simulator.Config) { c.Monitor.OverloadWatch = 0 }},
		{"watch 10 min (paper)", func(c *simulator.Config) {}},
		{"watch 30 min", func(c *simulator.Config) { c.Monitor.OverloadWatch = 30 }},
	})
}

// AblateProtection compares protection times — the oscillation guard
// that "prevents the system from oscillation, e.g., moving services
// back and forth".
func AblateProtection(hours int) (AblationResult, error) {
	return ablate("protection time (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"no protection", func(c *simulator.Config) { c.Controller.ProtectionMinutes = -1 }},
		{"protect 30 min (paper)", func(c *simulator.Config) {}},
		{"protect 120 min", func(c *simulator.Config) { c.Controller.ProtectionMinutes = 120 }},
	})
}

// AblateForecast compares the reactive paper controller against the
// proactive forecast extension (Section 7 / [8]): pattern-based load
// prediction triggers the controller ahead of the morning ramp.
func AblateForecast(hours int) (AblationResult, error) {
	return ablate("proactive load forecasting (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"reactive (paper)", func(c *simulator.Config) {}},
		{"forecast 15 min ahead", func(c *simulator.Config) { c.ForecastHorizon = 15 }},
		{"forecast 45 min ahead", func(c *simulator.Config) { c.ForecastHorizon = 45 }},
	})
}

// CrispRules builds a naive threshold rule set — rectangular membership
// functions and single-condition rules — standing in for the
// "rule-based and not as flexible as our fuzzy controller" automation
// the paper's related-work section contrasts against.
func CrispRules() (map[monitor.TriggerKind]*fuzzy.RuleBase, map[service.Action]*fuzzy.RuleBase) {
	crispLoad := func(name string) *fuzzy.Variable {
		v := fuzzy.NewVariable(name, 0, 1)
		v.AddTerm("low", fuzzy.Rect(0, 0.3))
		v.AddTerm("medium", fuzzy.Rect(0.3, 0.7))
		v.AddTerm("high", fuzzy.Rect(0.7, 1))
		return v
	}
	vc := fuzzy.NewVocabulary()
	vc.Add(crispLoad(controller.VarCPULoad))
	vc.Add(crispLoad(controller.VarMemLoad))
	vc.Add(crispLoad(controller.VarInstanceLoad))
	vc.Add(crispLoad(controller.VarServiceLoad))
	pi := fuzzy.NewVariable(controller.VarPerformanceIndex, 0, 10)
	pi.AddTerm("low", fuzzy.Rect(0, 3))
	pi.AddTerm("medium", fuzzy.Rect(3, 6))
	pi.AddTerm("high", fuzzy.Rect(6, 10))
	vc.Add(pi)
	n := fuzzy.NewVariable(controller.VarInstancesOnServer, 0, 10)
	n.AddTerm("low", fuzzy.Rect(0, 2))
	n.AddTerm("medium", fuzzy.Rect(2, 4))
	n.AddTerm("high", fuzzy.Rect(4, 10))
	vc.Add(n)
	k := fuzzy.NewVariable(controller.VarInstancesOfService, 0, 20)
	k.AddTerm("few", fuzzy.Rect(0, 2))
	k.AddTerm("several", fuzzy.Rect(2, 5))
	k.AddTerm("many", fuzzy.Rect(5, 20))
	vc.Add(k)
	for _, a := range service.Actions() {
		vc.Add(fuzzy.Applicability(string(a)))
	}

	action := map[monitor.TriggerKind]*fuzzy.RuleBase{
		monitor.ServiceOverloaded: fuzzy.MustRuleBase("crisp/serviceOverloaded", vc, fuzzy.MustParse(`
			IF instanceLoad IS high THEN scaleOut IS applicable`)),
		monitor.ServiceIdle: fuzzy.MustRuleBase("crisp/serviceIdle", vc, fuzzy.MustParse(`
			IF serviceLoad IS low AND instancesOfService IS many THEN scaleIn IS applicable`)),
		monitor.ServerOverloaded: fuzzy.MustRuleBase("crisp/serverOverloaded", vc, fuzzy.MustParse(`
			IF cpuLoad IS high THEN scaleOut IS applicable`)),
		monitor.ServerIdle: fuzzy.MustRuleBase("crisp/serverIdle", vc, fuzzy.MustParse(`
			IF cpuLoad IS low AND instancesOfService IS many THEN scaleIn IS applicable`)),
	}

	svc := fuzzy.NewVocabulary()
	svc.Add(crispLoad(controller.VarCPULoad))
	svc.Add(fuzzy.Applicability(controller.VarScore))
	place := fuzzy.MustRuleBase("crisp/select", svc, fuzzy.MustParse(`
		IF cpuLoad IS low THEN score IS applicable
		IF cpuLoad IS medium THEN score IS applicable`))
	selection := map[service.Action]*fuzzy.RuleBase{
		service.ActionScaleOut:  place,
		service.ActionStart:     place,
		service.ActionScaleUp:   place,
		service.ActionScaleDown: place,
		service.ActionMove:      place,
	}
	return action, selection
}

// AblateCrispBaseline compares the fuzzy controller against the naive
// crisp threshold controller.
func AblateCrispBaseline(hours int) (AblationResult, error) {
	crispAction, crispSelect := CrispRules()
	return ablate("fuzzy controller vs crisp thresholds (FM, 125 % users)", hours, []struct {
		label string
		tweak func(*simulator.Config)
	}{
		{"fuzzy controller (paper)", func(c *simulator.Config) {}},
		{"crisp threshold controller", func(c *simulator.Config) {
			c.Controller.ActionRules = crispAction
			c.Controller.SelectionRules = crispSelect
		}},
		{"no controller", func(c *simulator.Config) { c.DisableController = true }},
	})
}
