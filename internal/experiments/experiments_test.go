package experiments

import (
	"math"
	"strings"
	"testing"

	"autoglobe/internal/service"
)

func TestFigure3Checkpoint(t *testing.T) {
	r := Figure3(0.6)
	if math.Abs(r.Grades["medium"]-0.5) > 1e-6 || math.Abs(r.Grades["high"]-0.2) > 1e-6 {
		t.Errorf("Figure 3 checkpoint: got medium=%g high=%g, want 0.5/0.2",
			r.Grades["medium"], r.Grades["high"])
	}
	if !strings.Contains(r.String(), "0.50") {
		t.Errorf("rendering lost the checkpoint: %s", r)
	}
}

func TestFigure5Checkpoint(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Rule1Truth-0.6) > 1e-6 || math.Abs(r.Rule2Truth-0.3) > 1e-6 {
		t.Errorf("antecedent truths = %g/%g, want 0.6/0.3", r.Rule1Truth, r.Rule2Truth)
	}
	if math.Abs(r.ScaleUpCrisp-0.6) > 0.01 || math.Abs(r.ScaleOutCrisp-0.3) > 0.01 {
		t.Errorf("crisp outputs = %g/%g, want 0.6/0.3", r.ScaleUpCrisp, r.ScaleOutCrisp)
	}
	if r.PreferredAction != "scale-up" {
		t.Errorf("preferred action = %s, want scale-up", r.PreferredAction)
	}
}

func TestRuleBaseStats(t *testing.T) {
	st := RuleBases()
	if st.Total < 35 || st.Total > 60 {
		t.Errorf("total rules = %d, paper reports about 40", st.Total)
	}
	// The paper's four reactive situations plus the two forecast
	// (Section 7) trigger kinds.
	if len(st.PerTrigger) != 6 {
		t.Errorf("per-trigger rule bases = %d, want 6", len(st.PerTrigger))
	}
}

func TestFigure10(t *testing.T) {
	r := Figure10()
	if len(r.LES) != 24 || len(r.BW) != 24 {
		t.Fatalf("hourly samples = %d/%d, want 24 each", len(r.LES), len(r.BW))
	}
	if !(r.LES[10] > r.BW[10]) {
		t.Error("LES should dominate at 10:00")
	}
	if !(r.BW[2] > r.LES[2]) {
		t.Error("BW should dominate at 02:00")
	}
	if s := r.String(); !strings.Contains(s, "LES") || !strings.Contains(s, "BW") {
		t.Errorf("rendering incomplete: %s", s)
	}
}

func TestTable4(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		users float64
		inst  int
	}{
		"FI": {600, 3}, "LES": {900, 4}, "PP": {450, 2},
		"HR": {300, 1}, "CRM": {300, 1}, "BW": {60, 2},
	}
	for _, row := range r.Rows {
		w := want[row.Service]
		if row.Users != w.users || row.Instances != w.inst {
			t.Errorf("%s: %g users / %d instances, want %g / %d",
				row.Service, row.Users, row.Instances, w.users, w.inst)
		}
		// Interactive capacities exactly match the populations — the
		// hardware is scaled for peak load.
		if row.Service != "BW" && row.CapacityUsers != row.Users {
			t.Errorf("%s: capacity %g != users %g", row.Service, row.CapacityUsers, row.Users)
		}
	}
}

func TestConstraints(t *testing.T) {
	cm := Constraints(service.ConstrainedMobility)
	if !strings.Contains(cm.String(), "Table 5") {
		t.Error("CM constraints should render as Table 5")
	}
	if !strings.Contains(cm.String(), "exclusive") {
		t.Error("DB-ERP exclusivity missing from Table 5 rendering")
	}
	fm := Constraints(service.FullMobility)
	if !strings.Contains(fm.String(), "Table 6") {
		t.Error("FM constraints should render as Table 6")
	}
	if !strings.Contains(fm.String(), "move") {
		t.Error("move capability missing from Table 6 rendering")
	}
}

// TestTable7Quick runs a reduced sweep (one day, static only reaching
// its ceiling quickly) to exercise the sweep logic; the full 80-hour
// sweep is the BenchmarkTable07MaxUsers target.
func TestTable7Quick(t *testing.T) {
	r, err := Table7(Table7Options{Hours: 48, From: 100, To: 110})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MaxUsers[service.Static]; got != 100 && got != 105 {
		t.Errorf("static ceiling (48 h sweep) = %d%%, want 100–105%%", got)
	}
	if r.MaxUsers[service.FullMobility] < r.MaxUsers[service.Static] {
		t.Error("full mobility must sustain at least as many users as static")
	}
	if len(r.Detail) == 0 {
		t.Fatal("no sweep detail recorded")
	}
	if s := r.String(); !strings.Contains(s, "Table 7") {
		t.Error("rendering incomplete")
	}
}

func TestScenarioFigureRendering(t *testing.T) {
	f, err := RunScenarioFigure("Figure 12", service.Static, true)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "Blade1") || !strings.Contains(s, "DBServer3") {
		t.Error("per-host table incomplete")
	}
	fi := f.FICurves()
	if !strings.Contains(fi, "FI@Blade3") {
		t.Errorf("FI curves missing: %s", fi)
	}
}

// TestAblationsSmoke exercises every ablation harness on short runs;
// the full 48-hour versions are benchmark targets.
func TestAblationsSmoke(t *testing.T) {
	type fn struct {
		name string
		run  func(int) (AblationResult, error)
		rows int
	}
	for _, f := range []fn{
		{"defuzzifier", AblateDefuzzifier, 3},
		{"inference", AblateInference, 2},
		{"watchTime", AblateWatchTime, 3},
		{"protection", AblateProtection, 3},
		{"forecast", AblateForecast, 3},
	} {
		r, err := f.run(6)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(r.Rows) != f.rows {
			t.Errorf("%s: %d rows, want %d", f.name, len(r.Rows), f.rows)
		}
		if s := r.String(); !strings.Contains(s, "Ablation") {
			t.Errorf("%s: rendering incomplete", f.name)
		}
	}
}

// TestTable7Stability exercises the multi-seed sweep with a reduced
// window.
func TestTable7StabilityQuick(t *testing.T) {
	r, err := Table7Stability([]uint64{1, 2}, Table7Options{Hours: 24, From: 100, To: 105})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ceilings) != 2 {
		t.Fatalf("ceilings for %d seeds, want 2", len(r.Ceilings))
	}
	if !strings.Contains(r.String(), "seed") {
		t.Error("rendering incomplete")
	}
}

// TestCompareSLAQuick exercises the QoS comparison on a short run.
func TestCompareSLAQuick(t *testing.T) {
	r, err := CompareSLA(1.15, 0.30, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 3 {
		t.Fatalf("reports for %d scenarios, want 3", len(r.Reports))
	}
	if s := r.String(); !strings.Contains(s, "SLA enforcement") {
		t.Error("rendering incomplete")
	}
	// A generous 30 % bound is met even statically on a short run? Not
	// necessarily — but the full-mobility controller must meet it.
	if !r.Reports[service.FullMobility].Met() {
		t.Errorf("full mobility broke a 30%% degradation bound:\n%s", r.Reports[service.FullMobility])
	}
}

// TestFigure16Story: the constrained-mobility run reproduces the
// narrative of Figure 16 — the controller starts additional FI
// instances on hosts outside FI's initial blades (the paper's "Out
// Blade6" / "Out DBServer3") and later stops drained or displaced ones
// ("In Blade5").
func TestFigure16Story(t *testing.T) {
	f, err := RunScenarioFigure("Figure 16", service.ConstrainedMobility, true)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[string]bool{"Blade3": true, "Blade5": true, "Blade11": true}
	var outs, ins, outside int
	for _, e := range f.Result.ExecutedActions() {
		if e.Decision.Service != "FI" {
			continue
		}
		switch e.Decision.Action {
		case service.ActionScaleOut:
			outs++
			if !initial[e.Decision.TargetHost] {
				outside++
			}
		case service.ActionScaleIn:
			ins++
		}
	}
	if outs == 0 {
		t.Error("CM run executed no FI scale-outs")
	}
	if outside == 0 {
		t.Error("no FI scale-out targeted a host outside the initial blades")
	}
	if ins == 0 {
		t.Error("CM run executed no FI scale-ins")
	}
}

// TestFigure17Story: the full-mobility run additionally relocates FI
// instances (the paper's "Up …" / "Move …" annotations) and keeps FI's
// worst instance load below the static scenario's.
func TestFigure17Story(t *testing.T) {
	fm, err := RunScenarioFigure("Figure 17", service.FullMobility, true)
	if err != nil {
		t.Fatal(err)
	}
	reloc := 0
	for _, e := range fm.Result.ExecutedActions() {
		if e.Decision.Service != "FI" {
			continue
		}
		switch e.Decision.Action {
		case service.ActionMove, service.ActionScaleUp, service.ActionScaleDown:
			reloc++
		}
	}
	if reloc == 0 {
		t.Error("FM run relocated no FI instance (Figure 17 shows moves and scale-ups)")
	}
	worstFI := func(res *ScenarioFigure) float64 {
		var worst float64
		for _, pts := range res.Result.ServiceHostSeries {
			for _, p := range pts {
				if p.Load > worst {
					worst = p.Load
				}
			}
		}
		return worst
	}
	static, err := RunScenarioFigure("Figure 15", service.Static, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(worstFI(fm) < worstFI(static)) {
		t.Errorf("FM worst FI load (%.2f) not below static (%.2f)", worstFI(fm), worstFI(static))
	}
}

func TestAblationCrispQuick(t *testing.T) {
	r, err := AblateCrispBaseline(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	none := r.Rows[2]
	fuzzyRow := r.Rows[0]
	if !(fuzzyRow.TotalPerDay < none.TotalPerDay) {
		t.Errorf("fuzzy controller (%.0f) not better than no controller (%.0f)",
			fuzzyRow.TotalPerDay, none.TotalPerDay)
	}
}
