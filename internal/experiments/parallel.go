// Parallel sweep engine. Every paper artifact — the Table 7 sweep, its
// multi-seed stability companion, the ablation arms and the SLA
// comparison — is a pile of fully independent simulator runs: each run
// builds its own deployment, workload generator, archive, monitor and
// controller, and seeds its own RNG from the run configuration, so runs
// share no mutable state (the default fuzzy rule bases are shared but
// immutable and concurrency-safe, see internal/fuzzy/compile.go). This
// file fans those runs out across a bounded worker pool with
// deterministic result ordering and first-error propagation; the sweep
// drivers in tables.go, ablations.go and sla.go assemble the results in
// exactly the order the sequential loops would have produced them, so
// parallel output is byte-identical to sequential output.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveWorkers maps a Workers knob value to a concrete pool size:
// 0 or 1 mean sequential (the backwards-compatible default), negative
// means one worker per core (GOMAXPROCS), anything else is taken as is.
func resolveWorkers(w int) int {
	switch {
	case w < 0:
		return runtime.GOMAXPROCS(0)
	case w == 0:
		return 1
	default:
		return w
	}
}

// forEachIndex runs job(0..n-1) across a pool of workers goroutines and
// returns the first error by index. Jobs are dispatched in index order,
// so with isolated jobs writing into index-addressed slots the combined
// result is independent of scheduling. After any job fails no further
// jobs are started; the error of the lowest-indexed failed job is
// returned, matching the sequential loop's error up to jobs that were
// already in flight. workers <= 1 degenerates to the plain loop.
func forEachIndex(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepCut tracks, per job group (one (seed, scenario) lane of a
// sweep), the lowest percent at which a run came out overloaded. Workers
// consult it before starting a point: a point strictly above its lane's
// cut can never appear in the assembled detail — the sequential loop
// would have stopped earlier — so computing it would be pure waste.
// Skipping it cannot change results, only save work, because cuts move
// monotonically downward and are only set from deterministic run
// outcomes.
type sweepCut struct {
	cut []atomic.Int64 // lowest overloaded percent per group; -1 = none yet
}

func newSweepCut(groups int) *sweepCut {
	s := &sweepCut{cut: make([]atomic.Int64, groups)}
	for i := range s.cut {
		s.cut[i].Store(-1)
	}
	return s
}

// skip reports whether a point at pct in the group is unreachable.
func (s *sweepCut) skip(group, pct int) bool {
	c := s.cut[group].Load()
	return c >= 0 && int64(pct) > c
}

// overloaded records an overloaded outcome at pct, lowering the group's
// cut if pct is the lowest overloaded percent seen so far.
func (s *sweepCut) overloaded(group, pct int) {
	for {
		c := s.cut[group].Load()
		if c >= 0 && c <= int64(pct) {
			return
		}
		if s.cut[group].CompareAndSwap(c, int64(pct)) {
			return
		}
	}
}
