package experiments

import (
	"fmt"
	"sort"
	"strings"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
)

// Table4Result holds the initial user populations and instance counts
// (Table 4) together with the Figure 11 capacity cross-check.
type Table4Result struct {
	Rows []Table4Row
}

// Table4Row is one service line of Table 4.
type Table4Row struct {
	Service   string
	Users     float64
	Instances int
	// CapacityUsers is the aggregate capacity (150 users × performance
	// index) of the service's initially allocated hosts.
	CapacityUsers float64
}

// Table4 rebuilds the initial allocation and reports users, instance
// counts and the implied capacity per service.
func Table4() (Table4Result, error) {
	dep, err := service.BuildPaperDeployment(cluster.Paper(), service.Static, 1.0)
	if err != nil {
		return Table4Result{}, err
	}
	users := service.PaperUsers()
	var rows []Table4Row
	for _, name := range []string{"FI", "LES", "PP", "HR", "CRM", "BW"} {
		var capacity float64
		for _, inst := range dep.InstancesOf(name) {
			h, _ := dep.Cluster().Host(inst.Host)
			capacity += 150 * h.PerformanceIndex
		}
		rows = append(rows, Table4Row{
			Service:       name,
			Users:         users[name],
			Instances:     dep.CountOf(name),
			CapacityUsers: capacity,
		})
	}
	return Table4Result{Rows: rows}, nil
}

func (r Table4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 4: initial number of users and instances\n")
	fmt.Fprintf(&sb, "  %-8s %8s %10s %15s\n", "service", "users", "instances", "capacity-users")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8s %8.0f %10d %15.0f\n", row.Service, row.Users, row.Instances, row.CapacityUsers)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ConstraintsResult summarizes the declarative constraints of Tables 5
// and 6 as encoded by the service catalogs.
type ConstraintsResult struct {
	Scenario service.Mobility
	Lines    []string
}

// Constraints lists each service's conditions and possible actions for
// a scenario (the content of Tables 5 and 6).
func Constraints(m service.Mobility) ConstraintsResult {
	cat := service.PaperCatalog(m)
	var lines []string
	for _, svc := range cat.All() {
		var conds []string
		if svc.Exclusive {
			conds = append(conds, "exclusive")
		}
		if svc.MinPerfIndex > 0 {
			conds = append(conds, fmt.Sprintf("min. perf. index %g", svc.MinPerfIndex))
		}
		if svc.MinInstances > 1 {
			conds = append(conds, fmt.Sprintf("min. %d instances", svc.MinInstances))
		}
		var acts []string
		for _, a := range service.Actions() {
			if svc.Supports(a) {
				acts = append(acts, string(a))
			}
		}
		sort.Strings(acts)
		line := fmt.Sprintf("%-8s conditions: %-40s actions: %s",
			svc.Name, strings.Join(conds, ", "), strings.Join(acts, ", "))
		if len(acts) == 0 {
			line = fmt.Sprintf("%-8s conditions: %-40s actions: – (static)",
				svc.Name, strings.Join(conds, ", "))
		}
		lines = append(lines, line)
	}
	return ConstraintsResult{Scenario: m, Lines: lines}
}

func (r ConstraintsResult) String() string {
	table := "Table 5"
	if r.Scenario == service.FullMobility {
		table = "Table 6"
	}
	return fmt.Sprintf("%s: services in the %s scenario\n  %s",
		table, r.Scenario, strings.Join(r.Lines, "\n  "))
}

// Table7Result holds the headline experiment: the maximum relative user
// population each scenario sustains.
type Table7Result struct {
	// MaxUsers maps each scenario to the highest passing multiplier in
	// percent (paper: static 100 %, constrained mobility 115 %, full
	// mobility 135 %).
	MaxUsers map[service.Mobility]int
	// Detail records every sweep point.
	Detail []Table7Point
}

// Table7Point is one sweep measurement.
type Table7Point struct {
	Scenario    service.Mobility
	Percent     int
	WorstPerDay float64
	MaxStreak   int
	Actions     int
	Overloaded  bool
}

// Table7Options tunes the sweep.
type Table7Options struct {
	Hours    int     // simulated hours per point (default 80)
	Step     int     // sweep step in percent (default 5)
	From, To int     // sweep bounds in percent (default 100..150)
	Budget   float64 // overload minutes/day budget (default simulator.DefaultOverloadBudget)
	Streak   int     // continuous overload budget (default simulator.DefaultStreakBudget)
	Seed     uint64  // noise seed (default 1, the paper-reproduction seed)
	// Workers bounds the parallel sweep engine's pool: 0 or 1 run the
	// sweep sequentially, n > 1 fans the independent (scenario, percent)
	// simulator runs out over n goroutines, and any negative value uses
	// one worker per core (GOMAXPROCS). Results are byte-identical to
	// the sequential sweep for every setting.
	Workers int
}

func (o Table7Options) withDefaults() Table7Options {
	if o.Hours == 0 {
		o.Hours = 80
	}
	if o.Step == 0 {
		o.Step = 5
	}
	if o.From == 0 {
		o.From = 100
	}
	if o.To == 0 {
		o.To = 150
	}
	if o.Budget == 0 {
		o.Budget = simulator.DefaultOverloadBudget
	}
	if o.Streak == 0 {
		o.Streak = simulator.DefaultStreakBudget
	}
	return o
}

// table7Scenarios is the fixed scenario order of the paper's sweep.
var table7Scenarios = []service.Mobility{service.Static, service.ConstrainedMobility, service.FullMobility}

// runTable7Point simulates one (scenario, percent) sweep point. Every
// point builds its own simulator with a run-local RNG, deployment and
// controller, so points are fully independent and the function is safe
// to call from concurrent sweep workers.
func runTable7Point(opts Table7Options, seed uint64, m service.Mobility, pct int) (Table7Point, error) {
	cfg := simulator.PaperConfig(m, float64(pct)/100)
	cfg.Hours = opts.Hours
	if seed != 0 {
		cfg.Seed = seed
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		return Table7Point{}, err
	}
	run, err := sim.Run()
	if err != nil {
		return Table7Point{}, err
	}
	_, worst := run.WorstOverloadPerDay()
	streak := 0
	for _, h := range run.Hosts {
		if run.MaxStreak[h] > streak {
			streak = run.MaxStreak[h]
		}
	}
	return Table7Point{
		Scenario: m, Percent: pct, WorstPerDay: worst,
		MaxStreak: streak, Actions: len(run.ExecutedActions()),
		Overloaded: run.Overloaded(opts.Budget, opts.Streak),
	}, nil
}

// sweepJob is one (seed, scenario, percent) point of a sweep grid.
type sweepJob struct {
	seed     uint64
	scenario service.Mobility
	pct      int
	group    int // (seed, scenario) lane index for early-cutoff pruning
}

// sweepKey addresses a computed point during assembly.
type sweepKey struct {
	seed     uint64
	scenario service.Mobility
	pct      int
}

// runSweepGrid computes the given sweep points across the worker pool.
// Jobs are ordered by ascending percent so the cheap, always-needed low
// points of every lane run first; once a lane's lowest overloaded
// percent is known, its higher points are pruned (they can never appear
// in the assembled detail). The returned map holds every computed
// point.
func runSweepGrid(opts Table7Options, jobs []sweepJob, groups, workers int) (map[sweepKey]Table7Point, error) {
	points := make([]Table7Point, len(jobs))
	computed := make([]bool, len(jobs))
	cuts := newSweepCut(groups)
	err := forEachIndex(workers, len(jobs), func(i int) error {
		j := jobs[i]
		if cuts.skip(j.group, j.pct) {
			return nil
		}
		p, err := runTable7Point(opts, j.seed, j.scenario, j.pct)
		if err != nil {
			return err
		}
		points[i] = p
		computed[i] = true
		if p.Overloaded {
			cuts.overloaded(j.group, j.pct)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[sweepKey]Table7Point, len(jobs))
	for i, j := range jobs {
		if computed[i] {
			out[sweepKey{j.seed, j.scenario, j.pct}] = points[i]
		}
	}
	return out, nil
}

// sweepGridJobs builds the full job grid for the given seeds, ordered by
// ascending percent (then seed, then scenario order) so workers finish
// the low points of every lane before speculating on high ones.
func sweepGridJobs(opts Table7Options, seeds []uint64) ([]sweepJob, int) {
	var jobs []sweepJob
	groups := 0
	group := make(map[sweepKey]int) // keyed with pct 0: one lane per (seed, scenario)
	for pct := opts.From; pct <= opts.To; pct += opts.Step {
		for _, s := range seeds {
			for _, m := range table7Scenarios {
				laneKey := sweepKey{s, m, 0}
				g, ok := group[laneKey]
				if !ok {
					g = groups
					group[laneKey] = g
					groups++
				}
				jobs = append(jobs, sweepJob{seed: s, scenario: m, pct: pct, group: g})
			}
		}
	}
	return jobs, groups
}

// assembleTable7 replays the sequential sweep loop over the computed
// points: percent ascending per scenario, stop after the first
// overloaded point, ceiling = highest passing percent. Pruned points
// are, by construction, beyond the stopping point and never consulted.
func assembleTable7(opts Table7Options, seed uint64, points map[sweepKey]Table7Point) *Table7Result {
	res := &Table7Result{MaxUsers: make(map[service.Mobility]int)}
	for _, m := range table7Scenarios {
		maxOK := 0
		for pct := opts.From; pct <= opts.To; pct += opts.Step {
			p, ok := points[sweepKey{seed, m, pct}]
			if !ok {
				break // pruned: an earlier percent of this lane overloaded
			}
			res.Detail = append(res.Detail, p)
			if p.Overloaded {
				break
			}
			maxOK = pct
		}
		res.MaxUsers[m] = maxOK
	}
	return res
}

// Table7 sweeps the user multiplier for all three scenarios, increasing
// the population in 5 % steps "until the system becomes overloaded",
// and reports the maximum each scenario handles. With Workers > 1 the
// independent sweep points run on the parallel sweep engine; the result
// is byte-identical to the sequential sweep.
func Table7(opts Table7Options) (*Table7Result, error) {
	opts = opts.withDefaults()
	workers := resolveWorkers(opts.Workers)
	if workers <= 1 {
		// Sequential reference path: run exactly the points the paper's
		// protocol visits, in order.
		res := &Table7Result{MaxUsers: make(map[service.Mobility]int)}
		for _, m := range table7Scenarios {
			maxOK := 0
			for pct := opts.From; pct <= opts.To; pct += opts.Step {
				p, err := runTable7Point(opts, opts.Seed, m, pct)
				if err != nil {
					return nil, err
				}
				res.Detail = append(res.Detail, p)
				if p.Overloaded {
					break
				}
				maxOK = pct
			}
			res.MaxUsers[m] = maxOK
		}
		return res, nil
	}
	jobs, groups := sweepGridJobs(opts, []uint64{opts.Seed})
	points, err := runSweepGrid(opts, jobs, groups, workers)
	if err != nil {
		return nil, err
	}
	return assembleTable7(opts, opts.Seed, points), nil
}

// StabilityResult holds Table 7 ceilings across noise seeds, the
// robustness check for the headline reproduction.
type StabilityResult struct {
	Seeds    []uint64
	Ceilings map[uint64]map[service.Mobility]int
}

// Table7Stability repeats the Table 7 sweep for several seeds. With
// Workers > 1 one shared worker pool spans the whole (seed, scenario,
// percent) grid, so the pool stays saturated across seed boundaries;
// per-seed ceilings are byte-identical to sequential ones.
func Table7Stability(seeds []uint64, opts Table7Options) (*StabilityResult, error) {
	out := &StabilityResult{Seeds: seeds, Ceilings: make(map[uint64]map[service.Mobility]int)}
	o := opts.withDefaults()
	workers := resolveWorkers(o.Workers)
	if workers <= 1 {
		for _, s := range seeds {
			so := opts
			so.Seed = s
			res, err := Table7(so)
			if err != nil {
				return nil, err
			}
			out.Ceilings[s] = res.MaxUsers
		}
		return out, nil
	}
	jobs, groups := sweepGridJobs(o, seeds)
	points, err := runSweepGrid(o, jobs, groups, workers)
	if err != nil {
		return nil, err
	}
	for _, s := range seeds {
		out.Ceilings[s] = assembleTable7(o, s, points).MaxUsers
	}
	return out, nil
}

func (r *StabilityResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table 7 stability across seeds (max relative users)\n")
	fmt.Fprintf(&sb, "  %-6s %-8s %-22s %-14s\n", "seed", "static", "constrained mobility", "full mobility")
	for _, s := range r.Seeds {
		c := r.Ceilings[s]
		fmt.Fprintf(&sb, "  %-6d %3d%%     %3d%%                   %3d%%\n",
			s, c[service.Static], c[service.ConstrainedMobility], c[service.FullMobility])
	}
	return strings.TrimRight(sb.String(), "\n")
}

func (r *Table7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 7: maximum possible, relative number of users\n")
	fmt.Fprintf(&sb, "  %-22s %-12s %-12s\n", "scenario", "measured", "paper")
	paper := map[service.Mobility]string{
		service.Static:              "100%",
		service.ConstrainedMobility: "115%",
		service.FullMobility:        "135%",
	}
	for _, m := range []service.Mobility{service.Static, service.ConstrainedMobility, service.FullMobility} {
		fmt.Fprintf(&sb, "  %-22s %3d%%         %s\n", m.String(), r.MaxUsers[m], paper[m])
	}
	sb.WriteString("  sweep detail:\n")
	for _, p := range r.Detail {
		verdict := "ok"
		if p.Overloaded {
			verdict = "OVERLOADED"
		}
		fmt.Fprintf(&sb, "    %-22s %3d%%  worst %6.1f min/day, streak %3d min, %3d actions  %s\n",
			p.Scenario, p.Percent, p.WorstPerDay, p.MaxStreak, p.Actions, verdict)
	}
	return strings.TrimRight(sb.String(), "\n")
}
