package experiments

import (
	"fmt"
	"strings"

	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
	"autoglobe/internal/workload"
)

// Figure10Result holds the LES and BW load curves over one day.
type Figure10Result struct {
	// Hourly samples (24 values each) of the two curves, normalized to
	// the paper's 0–80 load axis by the service populations at
	// multiplier 1 (the paper plots absolute load).
	LES, BW []float64
}

// Figure10 samples the two example load curves of Figure 10: the
// three-peaked LES workday and the nocturnal BW batch profile.
func Figure10() Figure10Result {
	les := workload.Interactive(workload.DefaultPeakActivity)
	bw := workload.BatchNight(workload.DefaultPeakActivity)
	r := Figure10Result{}
	for h := 0; h < 24; h++ {
		// Scale to the figure's axis: LES peaks near 75, BW near 75.
		r.LES = append(r.LES, les.At(h*60)*100)
		r.BW = append(r.BW, bw.At(h*60)*100)
	}
	return r
}

func (r Figure10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: load curves of LES and BW over one day (hourly samples)\n")
	sb.WriteString("  hour:")
	for h := 0; h < 24; h += 2 {
		fmt.Fprintf(&sb, "%6d", h)
	}
	sb.WriteString("\n  LES: ")
	for h := 0; h < 24; h += 2 {
		fmt.Fprintf(&sb, "%6.1f", r.LES[h])
	}
	sb.WriteString("\n  BW:  ")
	for h := 0; h < 24; h += 2 {
		fmt.Fprintf(&sb, "%6.1f", r.BW[h])
	}
	return sb.String()
}

// ScenarioFigure reproduces one of Figures 12–14 (CPU load of all
// servers over the 80-hour run at +15 % users) or, with FI recording,
// Figures 15–17.
type ScenarioFigure struct {
	Figure   string
	Scenario service.Mobility
	Result   *simulator.Result
}

// RunScenarioFigure runs the 80-hour, +15 % simulation of Figures 12–17
// for one scenario. recordFI additionally captures the FI application
// servers' per-host curves (Figures 15–17).
func RunScenarioFigure(figure string, m service.Mobility, recordFI bool) (*ScenarioFigure, error) {
	cfg := simulator.PaperConfig(m, 1.15)
	if recordFI {
		cfg.RecordServices = []string{"FI"}
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &ScenarioFigure{Figure: figure, Scenario: m, Result: res}, nil
}

// sparkline renders a series as a coarse text chart.
func sparkline(series []float64, buckets int) string {
	if len(series) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	per := len(series) / buckets
	if per == 0 {
		per = 1
	}
	var sb strings.Builder
	for i := 0; i+per <= len(series); i += per {
		var sum float64
		for _, v := range series[i : i+per] {
			sum += v
		}
		avg := sum / float64(per)
		idx := int(avg * float64(len(glyphs)))
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		if idx < 0 {
			idx = 0
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

func (f *ScenarioFigure) String() string {
	r := f.Result
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: CPU load of all servers (%s scenario, users +%.0f%%, %.1f days)\n",
		f.Figure, f.Scenario, (r.Multiplier-1)*100, r.Days())
	fmt.Fprintf(&sb, "  average load over time: %s (mean %.0f%%)\n",
		sparkline(r.AvgLoad, 60), r.MeanLoad()*100)
	fmt.Fprintf(&sb, "  %-12s %6s %6s %10s %10s\n", "host", "mean", "max", "ovl min", "max streak")
	for _, s := range r.Summaries() {
		fmt.Fprintf(&sb, "  %-12s %5.0f%% %5.0f%% %10d %10d\n",
			s.Host, s.Mean*100, s.Max*100, s.OverloadMinutes, s.MaxStreak)
	}
	host, worst := r.WorstOverloadPerDay()
	fmt.Fprintf(&sb, "  worst host %s: %.0f overload min/day; total %.0f min/day; %d controller actions",
		host, worst, r.TotalOverloadPerDay(), len(r.ExecutedActions()))
	return sb.String()
}

// FICurves renders the FI application servers' load curves and the
// controller's action annotations — the content of Figures 15–17.
func (f *ScenarioFigure) FICurves() string {
	r := f.Result
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: CPU load of the FI application servers (%s scenario)\n", f.Figure, f.Scenario)
	for _, key := range r.SeriesKeys() {
		pts := r.ServiceHostSeries[key]
		series := make([]float64, 0, len(pts))
		var max float64
		for _, p := range pts {
			series = append(series, p.Load)
			if p.Load > max {
				max = p.Load
			}
		}
		fmt.Fprintf(&sb, "  %-16s %s (max %.0f%%, %d samples %d–%d min)\n",
			key, sparkline(series, 48), max*100, len(pts), pts[0].Minute, pts[len(pts)-1].Minute)
	}
	var fiActs []string
	for _, e := range r.ExecutedActions() { // already chronological
		if e.Decision.Service == "FI" {
			fiActs = append(fiActs, fmt.Sprintf("day %d %02d:%02d  %s",
				e.Minute/workload.MinutesPerDay+1, (e.Minute/60)%24, e.Minute%60, e.Decision))
		}
	}
	fmt.Fprintf(&sb, "  controller actions on FI (%d):\n", len(fiActs))
	for _, a := range fiActs {
		fmt.Fprintf(&sb, "    %s\n", a)
	}
	return strings.TrimRight(sb.String(), "\n")
}
