package experiments

import (
	"fmt"
	"strings"

	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
	"autoglobe/internal/sla"
)

// SLAComparison evaluates the same per-service degradation SLA against
// all three scenarios — the paper's closing QoS direction ("the actions
// will then be used to enforce Service Level Agreements") made
// measurable: what a 5 % degradation agreement costs under static
// allocation and what the controller buys.
type SLAComparison struct {
	Multiplier  float64
	MaxDegraded float64
	Reports     map[service.Mobility]*sla.Report
}

// CompareSLA runs the three scenarios at the multiplier and evaluates a
// uniform degradation SLA over every application service.
func CompareSLA(multiplier, maxDegraded float64, hours int) (*SLAComparison, error) {
	var agreements []sla.Agreement
	for _, svc := range service.AppServerNames() {
		agreements = append(agreements, sla.Agreement{Service: svc, MaxDegradedFraction: maxDegraded})
	}
	out := &SLAComparison{
		Multiplier: multiplier, MaxDegraded: maxDegraded,
		Reports: make(map[service.Mobility]*sla.Report),
	}
	// The three scenario runs are independent simulators; run them on
	// parallel workers (see parallel.go) and collect the reports into
	// index-addressed slots so the comparison is identical to the
	// sequential loop.
	scenarios := []service.Mobility{service.Static, service.ConstrainedMobility, service.FullMobility}
	reports := make([]*sla.Report, len(scenarios))
	err := forEachIndex(resolveWorkers(-1), len(scenarios), func(i int) error {
		cfg := simulator.PaperConfig(scenarios[i], multiplier)
		cfg.Hours = hours
		sim, err := simulator.New(cfg)
		if err != nil {
			return err
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		rep, err := sla.Evaluate(res, agreements)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range scenarios {
		out.Reports[m] = reports[i]
	}
	return out, nil
}

func (c *SLAComparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SLA enforcement (§7 direction): %.0f%% max degraded user-minutes, users at %.0f%%\n",
		c.MaxDegraded*100, c.Multiplier*100)
	for _, m := range []service.Mobility{service.Static, service.ConstrainedMobility, service.FullMobility} {
		rep := c.Reports[m]
		verdict := "ALL MET"
		if !rep.Met() {
			verdict = "violated: " + strings.Join(rep.Violations(), ", ")
		}
		fmt.Fprintf(&sb, "  %-22s %s\n", m, verdict)
		for _, row := range rep.Rows {
			fmt.Fprintf(&sb, "      %-6s degraded %5.2f%%\n", row.Agreement.Service, row.DegradedFraction*100)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}
