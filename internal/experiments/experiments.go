// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the worked examples of Section 3. Each
// experiment returns a structured result whose String method prints the
// same rows or series the paper reports; the benchmarks in the
// repository root and cmd/autoglobe-sim drive them.
package experiments

import (
	"fmt"
	"strings"

	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
)

// Figure3Result holds the fuzzification of a crisp CPU load (Figure 3).
type Figure3Result struct {
	Load   float64
	Grades map[string]float64
}

// Figure3 fuzzifies the crisp CPU load l with the paper's cpuLoad
// linguistic variable. The paper's checkpoint: l = 0.6 yields
// medium = 0.5 and high = 0.2.
func Figure3(l float64) Figure3Result {
	v := fuzzy.StandardLoad("cpuLoad")
	return Figure3Result{Load: l, Grades: v.Fuzzify(l)}
}

func (r Figure3Result) String() string {
	return fmt.Sprintf("Figure 3: cpuLoad l=%.2f → low=%.2f medium=%.2f high=%.2f",
		r.Load, r.Grades["low"], r.Grades["medium"], r.Grades["high"])
}

// Figure5Result holds the Section 3 / Figure 5 inference example.
type Figure5Result struct {
	CPULoad         float64
	PerfGrades      map[string]float64
	Rule1Truth      float64 // scale-up antecedent
	Rule2Truth      float64 // scale-out antecedent
	ScaleUpCrisp    float64
	ScaleOutCrisp   float64
	PreferredAction string
	DefuzzifierName string
}

// Figure5 reruns the paper's worked max–min inference: CPU load 0.9
// (μ_high = 0.8) with performance-index grades low 0, medium 0.6,
// high 0.3 fires the scale-up rule at 0.6 and the scale-out rule at 0.3;
// leftmost-maximum defuzzification returns exactly those applicability
// degrees, so the controller favors scale-up.
func Figure5() (Figure5Result, error) {
	pi := fuzzy.NewVariable("performanceIndex", 0, 10)
	pi.AddTerm("low", func(float64) float64 { return 0 })
	pi.AddTerm("medium", func(float64) float64 { return 0.6 })
	pi.AddTerm("high", func(float64) float64 { return 0.3 })
	vc := fuzzy.NewVocabulary()
	vc.Add(fuzzy.StandardLoad("cpuLoad"))
	vc.Add(pi)
	vc.Add(fuzzy.Applicability("scaleUp"))
	vc.Add(fuzzy.Applicability("scaleOut"))
	rb, err := fuzzy.NewRuleBase("section3", vc, fuzzy.MustParse(`
		IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) THEN scaleUp IS applicable
		IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable
	`))
	if err != nil {
		return Figure5Result{}, err
	}
	engine := fuzzy.NewEngine(nil)
	res, err := engine.Infer(rb, map[string]float64{"cpuLoad": 0.9, "performanceIndex": 5})
	if err != nil {
		return Figure5Result{}, err
	}
	out := Figure5Result{
		CPULoad:         0.9,
		PerfGrades:      map[string]float64{"low": 0, "medium": 0.6, "high": 0.3},
		Rule1Truth:      res.Fired[0],
		Rule2Truth:      res.Fired[1],
		ScaleUpCrisp:    res.Outputs["scaleUp"],
		ScaleOutCrisp:   res.Outputs["scaleOut"],
		DefuzzifierName: engine.Defuzzifier().Name(),
	}
	out.PreferredAction = "scale-up"
	if out.ScaleOutCrisp > out.ScaleUpCrisp {
		out.PreferredAction = "scale-out"
	}
	return out, nil
}

func (r Figure5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 / Section 3 inference (defuzzifier: %s)\n", r.DefuzzifierName)
	fmt.Fprintf(&sb, "  inputs: cpuLoad=%.1f (μ_high=0.8), perfIndex grades low=0 medium=0.6 high=0.3\n", r.CPULoad)
	fmt.Fprintf(&sb, "  rule 1 (scale-up)  antecedent truth = %.2f   [paper: 0.6]\n", r.Rule1Truth)
	fmt.Fprintf(&sb, "  rule 2 (scale-out) antecedent truth = %.2f   [paper: 0.3]\n", r.Rule2Truth)
	fmt.Fprintf(&sb, "  crisp: scaleUp=%.2f scaleOut=%.2f → controller favors %s",
		r.ScaleUpCrisp, r.ScaleOutCrisp, r.PreferredAction)
	return sb.String()
}

// RuleBaseStats summarizes the default rule bases — the paper reports a
// rule base "comprising about 40 rules".
type RuleBaseStats struct {
	PerTrigger map[string]int
	Selection  map[string]int
	Total      int
}

// RuleBases counts the rules of the built-in controller rule bases.
func RuleBases() RuleBaseStats {
	st := RuleBaseStats{PerTrigger: map[string]int{}, Selection: map[string]int{}}
	for kind, rb := range controller.DefaultActionRules() {
		st.PerTrigger[string(kind)] = rb.Len()
	}
	seen := map[string]bool{}
	for a, rb := range controller.DefaultSelectionRules() {
		st.Selection[string(a)] = rb.Len()
		if !seen[rb.Name] {
			seen[rb.Name] = true
		}
	}
	st.Total = controller.RuleCount()
	return st
}

func (s RuleBaseStats) String() string {
	return fmt.Sprintf("default controller rule bases: %d rules total (paper: about 40)", s.Total)
}
