// Package designer implements the landscape designer the paper plans as
// future work (Section 7: "we plan to develop a landscape designer tool.
// This tool calculates a statically optimized pre-assignment of all
// services to improve the dynamic optimization potential of the fuzzy
// controller"), following the static-allocation optimization of the
// companion paper [9].
//
// The designer solves a constrained load-balancing placement: given the
// expected peak demand of each service (in performance-index units per
// instance) it assigns instances to hosts so that the projected relative
// load of the most loaded host is minimized, honouring the declarative
// constraints (exclusivity, minimum performance index, memory, one
// instance of a service per host). The algorithm is longest-processing-
// time-first greedy — provably within 4/3 of the optimum for plain
// makespan and easily good enough to seed the runtime controller.
package designer

import (
	"fmt"
	"math"
	"sort"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
)

// Demand describes one service's expected load for the designer.
type Demand struct {
	// Service is the service name (must exist in the catalog).
	Service string
	// Instances is how many instances to place.
	Instances int
	// UnitsPerInstance is the expected peak CPU demand of one instance
	// in performance-index units.
	UnitsPerInstance float64
}

// Plan is the designer's result.
type Plan struct {
	// Assignments maps each service to the hosts chosen for its
	// instances, in placement order.
	Assignments map[string][]string
	// HostLoad is the projected peak relative load per host.
	HostLoad map[string]float64
	// Makespan is the highest projected relative load.
	Makespan float64
}

// Design computes a statically optimized pre-assignment.
func Design(cl *cluster.Cluster, cat *service.Catalog, demands []Demand) (*Plan, error) {
	type pending struct {
		svc   *service.Service
		units float64
	}
	var work []pending
	for _, d := range demands {
		svc, ok := cat.Get(d.Service)
		if !ok {
			return nil, fmt.Errorf("designer: unknown service %q", d.Service)
		}
		if d.Instances <= 0 {
			return nil, fmt.Errorf("designer: service %q: %d instances", d.Service, d.Instances)
		}
		if d.UnitsPerInstance < 0 {
			return nil, fmt.Errorf("designer: service %q: negative demand", d.Service)
		}
		for i := 0; i < d.Instances; i++ {
			work = append(work, pending{svc: svc, units: d.UnitsPerInstance + svc.BaseLoad})
		}
	}
	// LPT: place the heaviest instances first; exclusive services first
	// among equals so they can still claim an empty host.
	sort.SliceStable(work, func(i, j int) bool {
		if work[i].svc.Exclusive != work[j].svc.Exclusive {
			return work[i].svc.Exclusive
		}
		if work[i].units != work[j].units {
			return work[i].units > work[j].units
		}
		return work[i].svc.Name < work[j].svc.Name
	})

	load := make(map[string]float64)
	memUsed := make(map[string]int)
	hasService := make(map[string]map[string]bool) // host -> services
	exclusiveHost := make(map[string]bool)
	plan := &Plan{Assignments: make(map[string][]string), HostLoad: load}

	for _, w := range work {
		bestHost := ""
		bestLoad := 0.0
		for _, h := range cl.Hosts() {
			if !w.svc.CanRunOn(h) {
				continue
			}
			if exclusiveHost[h.Name] {
				continue
			}
			if w.svc.Exclusive && len(hasService[h.Name]) > 0 {
				continue
			}
			if hasService[h.Name][w.svc.Name] {
				continue
			}
			if memUsed[h.Name]+w.svc.MemoryMBPerInstance > h.MemoryMB {
				continue
			}
			projected := load[h.Name] + w.units/h.PerformanceIndex
			if bestHost == "" || projected < bestLoad ||
				(projected == bestLoad && h.Name < bestHost) {
				bestHost, bestLoad = h.Name, projected
			}
		}
		if bestHost == "" {
			return nil, fmt.Errorf("designer: no feasible host for service %q", w.svc.Name)
		}
		load[bestHost] = bestLoad
		memUsed[bestHost] += w.svc.MemoryMBPerInstance
		if hasService[bestHost] == nil {
			hasService[bestHost] = make(map[string]bool)
		}
		hasService[bestHost][w.svc.Name] = true
		if w.svc.Exclusive {
			exclusiveHost[bestHost] = true
		}
		plan.Assignments[w.svc.Name] = append(plan.Assignments[w.svc.Name], bestHost)
	}
	for _, v := range load {
		if v > plan.Makespan {
			plan.Makespan = v
		}
	}
	return plan, nil
}

// Refine improves a plan by local search: it repeatedly tries to
// relocate one instance from the most loaded host to any feasible host
// that lowers the makespan, until no single relocation helps or
// maxMoves relocations were applied. LPT plus this descent typically
// lands within a few percent of the optimum on landscape-sized inputs.
func Refine(cl *cluster.Cluster, cat *service.Catalog, demands []Demand, plan *Plan, maxMoves int) (*Plan, error) {
	// Rebuild the placement bookkeeping from the plan.
	unitsOf := make(map[string]float64) // service -> per-instance units (incl. base)
	for _, d := range demands {
		svc, ok := cat.Get(d.Service)
		if !ok {
			return nil, fmt.Errorf("designer: unknown service %q", d.Service)
		}
		unitsOf[d.Service] = d.UnitsPerInstance + svc.BaseLoad
	}
	type placement struct {
		svc  *service.Service
		host string
		slot int // index into plan.Assignments[svc]
	}
	var placements []placement
	load := make(map[string]float64)
	memUsed := make(map[string]int)
	hasService := make(map[string]map[string]bool)
	exclusiveHost := make(map[string]bool)
	for svcName, hosts := range plan.Assignments {
		svc, ok := cat.Get(svcName)
		if !ok {
			return nil, fmt.Errorf("designer: plan references unknown service %q", svcName)
		}
		for slot, hostName := range hosts {
			h, ok := cl.Host(hostName)
			if !ok {
				return nil, fmt.Errorf("designer: plan references unknown host %q", hostName)
			}
			placements = append(placements, placement{svc: svc, host: hostName, slot: slot})
			load[hostName] += unitsOf[svcName] / h.PerformanceIndex
			memUsed[hostName] += svc.MemoryMBPerInstance
			if hasService[hostName] == nil {
				hasService[hostName] = make(map[string]bool)
			}
			hasService[hostName][svcName] = true
			if svc.Exclusive {
				exclusiveHost[hostName] = true
			}
		}
	}
	sort.Slice(placements, func(i, j int) bool {
		if placements[i].svc.Name != placements[j].svc.Name {
			return placements[i].svc.Name < placements[j].svc.Name
		}
		return placements[i].slot < placements[j].slot
	})

	makespan := func() (string, float64) {
		worstHost, worst := "", 0.0
		for h, v := range load {
			if v > worst || worstHost == "" {
				worstHost, worst = h, v
			}
		}
		return worstHost, worst
	}

	for move := 0; move < maxMoves; move++ {
		worstHost, worst := makespan()
		improved := false
		for i := range placements {
			p := &placements[i]
			if p.host != worstHost || p.svc.Exclusive {
				continue
			}
			units := unitsOf[p.svc.Name]
			for _, h := range cl.Hosts() {
				if h.Name == p.host || exclusiveHost[h.Name] || hasService[h.Name][p.svc.Name] {
					continue
				}
				if !p.svc.CanRunOn(h) {
					continue
				}
				if memUsed[h.Name]+p.svc.MemoryMBPerInstance > h.MemoryMB {
					continue
				}
				newSrc := load[p.host] - units/mustPI(cl, p.host)
				newDst := load[h.Name] + units/h.PerformanceIndex
				if math.Max(newSrc, newDst) >= worst {
					continue
				}
				// Apply the relocation.
				delete(hasService[p.host], p.svc.Name)
				memUsed[p.host] -= p.svc.MemoryMBPerInstance
				load[p.host] = newSrc
				if hasService[h.Name] == nil {
					hasService[h.Name] = make(map[string]bool)
				}
				hasService[h.Name][p.svc.Name] = true
				memUsed[h.Name] += p.svc.MemoryMBPerInstance
				load[h.Name] = newDst
				plan.Assignments[p.svc.Name][p.slot] = h.Name
				p.host = h.Name
				improved = true
				break
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}

	out := &Plan{Assignments: plan.Assignments, HostLoad: load}
	_, out.Makespan = makespan()
	return out, nil
}

func mustPI(cl *cluster.Cluster, host string) float64 {
	h, ok := cl.Host(host)
	if !ok {
		return 1
	}
	return h.PerformanceIndex
}

// Apply starts the planned instances on a fresh deployment.
func (p *Plan) Apply(dep *service.Deployment) error {
	services := make([]string, 0, len(p.Assignments))
	for svc := range p.Assignments {
		services = append(services, svc)
	}
	sort.Strings(services)
	for _, svc := range services {
		for _, host := range p.Assignments[svc] {
			if _, err := dep.Start(svc, host); err != nil {
				return fmt.Errorf("designer: apply: %w", err)
			}
		}
	}
	return nil
}

// String renders the plan.
func (p *Plan) String() string {
	services := make([]string, 0, len(p.Assignments))
	for svc := range p.Assignments {
		services = append(services, svc)
	}
	sort.Strings(services)
	s := fmt.Sprintf("landscape plan (projected peak load %.0f%%):\n", p.Makespan*100)
	for _, svc := range services {
		s += fmt.Sprintf("  %-8s → %v\n", svc, p.Assignments[svc])
	}
	return s
}
