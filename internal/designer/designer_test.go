package designer

import (
	"strings"
	"testing"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
)

func mk(name string, pi float64, memMB int) cluster.Host {
	return cluster.Host{
		Name: name, Category: "t", PerformanceIndex: pi, CPUs: 1,
		ClockMHz: 1000, CacheKB: 512, MemoryMB: memMB, SwapMB: memMB, TempMB: 1024,
	}
}

func TestDesignBalances(t *testing.T) {
	cl := cluster.MustNew(mk("a", 1, 4096), mk("b", 1, 4096), mk("c", 2, 8192))
	cat := service.MustCatalog(
		&service.Service{Name: "s1", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
		&service.Service{Name: "s2", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
		&service.Service{Name: "s3", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
		&service.Service{Name: "s4", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
	)
	plan, err := Design(cl, cat, []Demand{
		{Service: "s1", Instances: 1, UnitsPerInstance: 0.8},
		{Service: "s2", Instances: 1, UnitsPerInstance: 0.8},
		{Service: "s3", Instances: 1, UnitsPerInstance: 0.8},
		{Service: "s4", Instances: 1, UnitsPerInstance: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total demand 3.2 units over 4 units of capacity: a balanced plan
	// keeps every host at 80 %; the PI-2 host should carry two services.
	if plan.Makespan > 0.85 {
		t.Errorf("makespan = %.2f, want balanced ~0.8\n%s", plan.Makespan, plan)
	}
	onC := 0
	for _, hosts := range plan.Assignments {
		for _, h := range hosts {
			if h == "c" {
				onC++
			}
		}
	}
	if onC != 2 {
		t.Errorf("PI-2 host carries %d services, want 2\n%s", onC, plan)
	}
}

func TestDesignRespectsConstraints(t *testing.T) {
	cl := cluster.MustNew(mk("small", 1, 2048), mk("big", 9, 16384))
	cat := service.MustCatalog(
		&service.Service{Name: "db", Type: service.TypeDatabase, Exclusive: true,
			MinPerfIndex: 5, MemoryMBPerInstance: 8192},
		&service.Service{Name: "app", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
	)
	plan, err := Design(cl, cat, []Demand{
		{Service: "db", Instances: 1, UnitsPerInstance: 2},
		{Service: "app", Instances: 1, UnitsPerInstance: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Assignments["db"]; len(got) != 1 || got[0] != "big" {
		t.Fatalf("db placed on %v, want big (min perf index 5)", got)
	}
	// The database is exclusive, so app must land on the small host even
	// though big is less loaded.
	if got := plan.Assignments["app"]; len(got) != 1 || got[0] != "small" {
		t.Fatalf("app placed on %v, want small (big is exclusive)", got)
	}
}

func TestDesignOneInstancePerHost(t *testing.T) {
	cl := cluster.MustNew(mk("a", 1, 8192), mk("b", 1, 8192))
	cat := service.MustCatalog(
		&service.Service{Name: "s", Type: service.TypeInteractive, MemoryMBPerInstance: 1024})
	plan, err := Design(cl, cat, []Demand{{Service: "s", Instances: 2, UnitsPerInstance: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	hosts := plan.Assignments["s"]
	if len(hosts) != 2 || hosts[0] == hosts[1] {
		t.Fatalf("instances on %v, want two distinct hosts", hosts)
	}
	if _, err := Design(cl, cat, []Demand{{Service: "s", Instances: 3, UnitsPerInstance: 0.1}}); err == nil {
		t.Error("3 instances on 2 hosts accepted")
	}
}

func TestDesignMemoryLimit(t *testing.T) {
	cl := cluster.MustNew(mk("a", 1, 1024))
	cat := service.MustCatalog(
		&service.Service{Name: "fat", Type: service.TypeInteractive, MemoryMBPerInstance: 2048})
	if _, err := Design(cl, cat, []Demand{{Service: "fat", Instances: 1, UnitsPerInstance: 0.1}}); err == nil {
		t.Error("memory-infeasible plan accepted")
	}
}

func TestDesignErrors(t *testing.T) {
	cl := cluster.MustNew(mk("a", 1, 1024))
	cat := service.MustCatalog(&service.Service{Name: "s", Type: service.TypeBatch})
	if _, err := Design(cl, cat, []Demand{{Service: "ghost", Instances: 1}}); err == nil {
		t.Error("unknown service accepted")
	}
	if _, err := Design(cl, cat, []Demand{{Service: "s", Instances: 0}}); err == nil {
		t.Error("zero instances accepted")
	}
	if _, err := Design(cl, cat, []Demand{{Service: "s", Instances: 1, UnitsPerInstance: -1}}); err == nil {
		t.Error("negative demand accepted")
	}
}

// TestRefineImprovesUnbalancedPlan: local search relocates instances
// off the most loaded host until the makespan cannot improve.
func TestRefineImprovesUnbalancedPlan(t *testing.T) {
	cl := cluster.MustNew(mk("a", 1, 8192), mk("b", 1, 8192), mk("c", 1, 8192))
	cat := service.MustCatalog(
		&service.Service{Name: "s1", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
		&service.Service{Name: "s2", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
		&service.Service{Name: "s3", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
	)
	demands := []Demand{
		{Service: "s1", Instances: 1, UnitsPerInstance: 0.3},
		{Service: "s2", Instances: 1, UnitsPerInstance: 0.3},
		{Service: "s3", Instances: 1, UnitsPerInstance: 0.3},
	}
	// A deliberately terrible plan: everything on host a.
	bad := &Plan{Assignments: map[string][]string{
		"s1": {"a"}, "s2": {"a"}, "s3": {"a"},
	}}
	refined, err := Refine(cl, cat, demands, bad, 10)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Makespan > 0.35 {
		t.Errorf("refined makespan = %.2f, want ~0.3 (one service per host)\n%v",
			refined.Makespan, refined.Assignments)
	}
	hosts := map[string]bool{}
	for _, hs := range refined.Assignments {
		for _, h := range hs {
			hosts[h] = true
		}
	}
	if len(hosts) != 3 {
		t.Errorf("refined plan uses %d hosts, want 3", len(hosts))
	}
}

// TestRefineRespectsConstraints: refinement never moves onto an
// exclusive host or violates memory/min-PI.
func TestRefineRespectsConstraints(t *testing.T) {
	cl := cluster.MustNew(mk("small", 1, 2048), mk("big", 9, 16384))
	cat := service.MustCatalog(
		&service.Service{Name: "db", Type: service.TypeDatabase, Exclusive: true,
			MinPerfIndex: 5, MemoryMBPerInstance: 8192},
		&service.Service{Name: "app", Type: service.TypeInteractive, MemoryMBPerInstance: 1024},
	)
	demands := []Demand{
		{Service: "db", Instances: 1, UnitsPerInstance: 2},
		{Service: "app", Instances: 1, UnitsPerInstance: 0.9},
	}
	plan := &Plan{Assignments: map[string][]string{"db": {"big"}, "app": {"small"}}}
	refined, err := Refine(cl, cat, demands, plan, 10)
	if err != nil {
		t.Fatal(err)
	}
	// app is on the worst host (0.95 vs 0.25) but big is exclusive: it
	// must stay put.
	if got := refined.Assignments["app"][0]; got != "small" {
		t.Errorf("app relocated onto exclusive host: %s", got)
	}
}

// TestDesignPaperLandscape plans the paper's full installation from its
// peak demands and checks the plan is feasible and balanced well below
// the overload level.
func TestDesignPaperLandscape(t *testing.T) {
	cl := cluster.Paper()
	cat := service.PaperCatalog(service.FullMobility)
	users := service.PaperUsers()
	var demands []Demand
	for svc, u := range users {
		s, _ := cat.Get(svc)
		inst := map[string]int{"FI": 3, "LES": 4, "PP": 2, "HR": 1, "CRM": 1, "BW": 2}[svc]
		demands = append(demands, Demand{
			Service:          svc,
			Instances:        inst,
			UnitsPerInstance: u * 0.74 / float64(s.UsersPerUnit) / float64(inst),
		})
	}
	demands = append(demands,
		Demand{Service: "CI-ERP", Instances: 1, UnitsPerInstance: 0.45},
		Demand{Service: "CI-CRM", Instances: 1, UnitsPerInstance: 0.1},
		Demand{Service: "CI-BW", Instances: 1, UnitsPerInstance: 0.15},
		Demand{Service: "DB-ERP", Instances: 1, UnitsPerInstance: 2.2},
		Demand{Service: "DB-CRM", Instances: 1, UnitsPerInstance: 0.4},
		Demand{Service: "DB-BW", Instances: 1, UnitsPerInstance: 4.5},
	)
	plan, err := Design(cl, cat, demands)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Makespan > 0.8 {
		t.Errorf("paper landscape plan makespan %.2f, want < 0.8\n%s", plan.Makespan, plan)
	}
	// The plan applies cleanly to a fresh deployment.
	dep := service.NewDeployment(cl, cat)
	if err := plan.Apply(dep); err != nil {
		t.Fatal(err)
	}
	if s := plan.String(); !strings.Contains(s, "LES") {
		t.Error("plan rendering incomplete")
	}
}
