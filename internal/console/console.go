// Package console renders the controller console of the paper's
// Figure 8 as text: a server view (all controlled servers grouped by
// category, with detail), a service view, and a message view listing
// administrative messages and notifications. The GUI's information
// surface is preserved; the rendering targets terminals instead of
// Swing.
package console

import (
	"fmt"
	"strings"

	"autoglobe/internal/archive"
	"autoglobe/internal/controller"
	"autoglobe/internal/service"
)

// ServerView renders all controlled servers grouped by category, with
// their hardware attributes, current load and resident instances.
func ServerView(dep *service.Deployment, arch *archive.Archive) string {
	var sb strings.Builder
	sb.WriteString("SERVER VIEW\n")
	cl := dep.Cluster()
	for _, cat := range cl.Categories() {
		fmt.Fprintf(&sb, "category %s\n", cat)
		fmt.Fprintf(&sb, "  %-12s %4s %5s %7s %7s %5s %5s  %s\n",
			"server", "PI", "CPUs", "MHz", "mem MB", "cpu", "mem", "instances")
		for _, h := range cl.ByCategory(cat) {
			var cpu, mem float64
			if s, ok := arch.Latest(archive.HostEntity(h.Name)); ok {
				cpu, mem = s.CPU, s.Mem
			}
			var insts []string
			for _, inst := range dep.InstancesOn(h.Name) {
				insts = append(insts, inst.Service)
			}
			fmt.Fprintf(&sb, "  %-12s %4g %5d %7d %7d %4.0f%% %4.0f%%  %s\n",
				h.Name, h.PerformanceIndex, h.CPUs, h.ClockMHz, h.MemoryMB,
				cpu*100, mem*100, strings.Join(insts, ", "))
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ServerDetail renders the lower right-hand panel of the paper's
// console: detailed information about one selected server — hardware
// attributes, current load, tail quantiles over the recent window, the
// aggregated day profile, and resident instances.
func ServerDetail(dep *service.Deployment, arch *archive.Archive, host string, nowMinute int) string {
	h, ok := dep.Cluster().Host(host)
	if !ok {
		return fmt.Sprintf("SERVER DETAIL: unknown server %q", host)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SERVER DETAIL %s\n", h)
	fmt.Fprintf(&sb, "  hardware: %d CPU × %d MHz, %d KB cache, %d MB memory, %d MB swap, %d MB temp\n",
		h.CPUs, h.ClockMHz, h.CacheKB, h.MemoryMB, h.SwapMB, h.TempMB)
	entity := archive.HostEntity(host)
	if s, ok := arch.Latest(entity); ok {
		fmt.Fprintf(&sb, "  load now: cpu %.0f%%, mem %.0f%%\n", s.CPU*100, s.Mem*100)
	}
	from := nowMinute - 24*60
	if avg, ok := arch.AverageCPU(entity, from, nowMinute); ok {
		p95, _ := arch.PercentileCPU(entity, from, nowMinute, 0.95)
		p99, _ := arch.PercentileCPU(entity, from, nowMinute, 0.99)
		fmt.Fprintf(&sb, "  last 24 h: mean %.0f%%, p95 %.0f%%, p99 %.0f%%\n", avg*100, p95*100, p99*100)
	}
	profile := arch.DayProfile(entity)
	fmt.Fprintf(&sb, "  day profile: %s\n", loadSparkline(profile))
	insts := dep.InstancesOn(host)
	fmt.Fprintf(&sb, "  instances (%d):\n", len(insts))
	for _, inst := range insts {
		fmt.Fprintf(&sb, "    %-20s %-10s users %7.1f  priority %+d\n",
			inst.ID, inst.Service, inst.Users, inst.Priority)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// loadSparkline compresses a per-minute day profile into a 48-glyph
// text chart.
func loadSparkline(profile []float64) string {
	if len(profile) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	const buckets = 48
	per := len(profile) / buckets
	if per == 0 {
		per = 1
	}
	var sb strings.Builder
	for i := 0; i+per <= len(profile); i += per {
		var sum float64
		for _, v := range profile[i : i+per] {
			sum += v
		}
		idx := int(sum / float64(per) * float64(len(glyphs)))
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		if idx < 0 {
			idx = 0
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

// ServiceView renders all controlled services with their instance
// placement, users and load.
func ServiceView(dep *service.Deployment, arch *archive.Archive) string {
	var sb strings.Builder
	sb.WriteString("SERVICE VIEW\n")
	fmt.Fprintf(&sb, "  %-8s %-16s %10s %9s %6s\n", "service", "type", "instances", "users", "load")
	for _, name := range dep.Catalog().Names() {
		svc, _ := dep.Catalog().Get(name)
		var load float64
		if s, ok := arch.Latest(archive.ServiceEntity(name)); ok {
			load = s.CPU
		}
		fmt.Fprintf(&sb, "  %-8s %-16s %10d %9.0f %5.0f%%\n",
			name, svc.Type, dep.CountOf(name), dep.UsersOf(name), load*100)
		for _, inst := range dep.InstancesOf(name) {
			fmt.Fprintf(&sb, "      %-20s on %-12s users %7.1f  priority %+d\n",
				inst.ID, inst.Host, inst.Users, inst.Priority)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

// MessageView renders the most recent administrative messages and
// notifications (executed actions, alerts, pending confirmations).
func MessageView(events []controller.Event, limit int) string {
	var sb strings.Builder
	sb.WriteString("MESSAGE VIEW\n")
	start := 0
	if limit > 0 && len(events) > limit {
		start = len(events) - limit
		fmt.Fprintf(&sb, "  … %d earlier messages\n", start)
	}
	for _, e := range events[start:] {
		switch {
		case e.Executed:
			fmt.Fprintf(&sb, "  [%5d] executed: %s\n", e.Minute, e.Decision)
		case e.Decision != nil:
			fmt.Fprintf(&sb, "  [%5d] %s: %s\n", e.Minute, e.Decision, e.Note)
		default:
			fmt.Fprintf(&sb, "  [%5d] %s\n", e.Minute, e.Note)
		}
	}
	if len(events) == 0 {
		sb.WriteString("  (no messages)\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
