package console

import (
	"context"
	"strings"
	"testing"

	"autoglobe/internal/agent"
	"autoglobe/internal/cluster"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
	"autoglobe/internal/wire"
)

func TestPlaneView(t *testing.T) {
	dep, err := service.BuildPaperDeployment(cluster.Paper(), service.ConstrainedMobility, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := monitor.NewSystem(monitor.PaperParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := wire.NewLoopback()
	p, err := agent.NewPlane(agent.PlaneConfig{Transport: tr}, dep, lms)
	if err != nil {
		t.Fatal(err)
	}
	// One host beats, the rest stay unknown.
	if err := p.Report(context.Background(), wire.Heartbeat{Host: "Blade1", Minute: 0, CPU: 0.4}); err != nil {
		t.Fatal(err)
	}

	v := PlaneView(dep, p)
	for _, want := range []string{"CONTROL PLANE", "coordinator", "1 heartbeats ingested", "dispatcher", "Blade1"} {
		if !strings.Contains(v, want) {
			t.Errorf("plane view missing %q:\n%s", want, v)
		}
	}
	var sawAlive, sawUnknown bool
	for _, line := range strings.Split(v, "\n") {
		if strings.Contains(line, "Blade1 ") && strings.Contains(line, "alive") {
			sawAlive = true
		}
		if strings.Contains(line, "Blade2 ") && strings.Contains(line, "unknown") {
			sawUnknown = true
		}
	}
	if !sawAlive || !sawUnknown {
		t.Errorf("liveness states not rendered (alive=%v unknown=%v):\n%s", sawAlive, sawUnknown, v)
	}
}
