package console

import (
	"fmt"
	"sort"
	"strings"

	"autoglobe/internal/obs"
)

// ObsView renders the observability panel: the registry's metric
// families as sorted "series = value" lines and the most recent
// control-loop traces (trigger → decision → outcome). It is the
// console twin of the /autoglobe/v1/metrics and /autoglobe/v1/traces
// endpoints, for the administrator watching a run from a terminal
// instead of a scrape pipeline. Nil arguments render as absent
// sections, so the panel degrades gracefully on uninstrumented runs.
func ObsView(r *obs.Registry, tr *obs.Tracer, traceLimit int) string {
	var sb strings.Builder
	sb.WriteString("OBSERVABILITY\n")

	if r == nil {
		sb.WriteString("  (metrics not attached)\n")
	} else {
		snap := r.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			sb.WriteString("  (no metrics recorded)\n")
		}
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %s = %g\n", k, snap[k])
		}
	}

	sb.WriteString("RECENT TRACES\n")
	switch {
	case tr == nil:
		sb.WriteString("  (traces not attached)\n")
	default:
		traces := tr.Snapshot()
		if len(traces) == 0 {
			sb.WriteString("  (no traces recorded)\n")
		}
		start := 0
		if traceLimit > 0 && len(traces) > traceLimit {
			start = len(traces) - traceLimit
			fmt.Fprintf(&sb, "  … %d earlier traces\n", start)
		}
		for _, t := range traces[start:] {
			fmt.Fprintf(&sb, "  [%5d] %s(%s) -> %s", t.Minute, t.Trigger.Kind, t.Trigger.Entity, t.Outcome)
			if t.Note != "" {
				fmt.Fprintf(&sb, " (%s)", t.Note)
			}
			sb.WriteString("\n")
			if d := t.Decision; d != nil {
				fmt.Fprintf(&sb, "          %s %s", d.Action, d.Service)
				if d.InstanceID != "" {
					fmt.Fprintf(&sb, " inst=%s", d.InstanceID)
				}
				if d.SourceHost != "" || d.TargetHost != "" {
					fmt.Fprintf(&sb, " %s->%s", d.SourceHost, d.TargetHost)
				}
				fmt.Fprintf(&sb, " applicability=%.2f", d.Applicability)
				if d.TargetHost != "" {
					fmt.Fprintf(&sb, " hostScore=%.2f", d.HostScore)
				}
				sb.WriteString("\n")
				// Rule provenance, one indented line per firing rule.
				for _, line := range strings.Split(d.Provenance, "\n") {
					if line != "" {
						fmt.Fprintf(&sb, "            %s\n", line)
					}
				}
			}
			for _, ev := range t.Dispatches {
				status := "ack"
				switch {
				case !ev.OK:
					status = "FAILED"
				case ev.Duplicate:
					status = "duplicate ack"
				}
				fmt.Fprintf(&sb, "          dispatch %s %s attempts=%d %s", ev.Op, ev.Host, ev.Attempts, status)
				if ev.Compensation {
					sb.WriteString(" (compensation)")
				}
				if ev.Error != "" {
					fmt.Fprintf(&sb, " err=%q", ev.Error)
				}
				sb.WriteString("\n")
			}
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}
