package console

import (
	"fmt"
	"strings"

	"autoglobe/internal/agent"
	"autoglobe/internal/service"
)

// PlaneView renders the control-plane panel: the coordinator's ingest
// counters, the dispatcher's retry/duplicate/nack statistics, and one
// line per host with its liveness state and the size of its agent's
// process table. It complements the server and service views with the
// distributed-mode health an administrator watches during partitions:
// which hosts are silent, which are demoted, how many actions needed
// retries.
func PlaneView(dep *service.Deployment, p *agent.Plane) string {
	var sb strings.Builder
	sb.WriteString("CONTROL PLANE\n")
	coord := p.Coordinator()
	st := p.Dispatcher().Stats()
	fmt.Fprintf(&sb, "  coordinator %s: %d heartbeats ingested\n", coord.Node(), coord.Heartbeats())
	fmt.Fprintf(&sb, "  dispatcher: %d actions, %d retries, %d duplicate acks, %d nacks, %d expired\n",
		st.Actions, st.Retries, st.Duplicates, st.Nacks, st.Expired)

	live := coord.Liveness()
	down := make(map[string]bool)
	for _, h := range live.Down() {
		down[h] = true
	}
	fmt.Fprintf(&sb, "  %-12s %-8s %s\n", "host", "state", "agent procs")
	for _, host := range dep.Cluster().Names() {
		state := "unknown" // no beat seen yet
		switch {
		case down[host]:
			state = "DEAD"
		case live.Tracking(host):
			state = "alive"
		}
		procs := "-"
		if a, ok := p.Agent(host); ok {
			procs = fmt.Sprintf("%d", a.Procs())
		}
		fmt.Fprintf(&sb, "  %-12s %-8s %s\n", host, state, procs)
	}
	// Demoted hosts are out of the cluster but still tracked: show them
	// so the administrator sees what a healed partition would re-pool.
	for _, host := range live.Down() {
		if _, pooled := dep.Cluster().Host(host); !pooled {
			fmt.Fprintf(&sb, "  %-12s %-8s (demoted, awaiting recovery)\n", host, "DEAD")
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}
