package console

import (
	"strings"
	"testing"

	"autoglobe/internal/archive"
	"autoglobe/internal/cluster"
	"autoglobe/internal/controller"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
)

func testWorld(t *testing.T) (*service.Deployment, *archive.Archive) {
	t.Helper()
	dep, err := service.BuildPaperDeployment(cluster.Paper(), service.ConstrainedMobility, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	arch := archive.New(0)
	arch.Record(archive.HostEntity("Blade1"), archive.Sample{Minute: 0, CPU: 0.42, Mem: 0.5})
	arch.Record(archive.ServiceEntity("FI"), archive.Sample{Minute: 0, CPU: 0.33})
	return dep, arch
}

func TestServerView(t *testing.T) {
	dep, arch := testWorld(t)
	v := ServerView(dep, arch)
	for _, want := range []string{"SERVER VIEW", "FSC-BX300", "FSC-BX600", "HP-Proliant-BL40p", "Blade1", "DBServer3", "42%"} {
		if !strings.Contains(v, want) {
			t.Errorf("server view missing %q:\n%s", want, v)
		}
	}
	// Blade1 runs LES per the initial allocation.
	for _, line := range strings.Split(v, "\n") {
		if strings.Contains(line, "Blade1 ") && !strings.Contains(line, "LES") {
			t.Errorf("Blade1 line missing its LES instance: %s", line)
		}
	}
}

func TestServiceView(t *testing.T) {
	dep, arch := testWorld(t)
	v := ServiceView(dep, arch)
	for _, want := range []string{"SERVICE VIEW", "FI", "interactive", "DB-ERP", "database", "600", "33%"} {
		if !strings.Contains(v, want) {
			t.Errorf("service view missing %q:\n%s", want, v)
		}
	}
}

func TestServerDetail(t *testing.T) {
	dep, arch := testWorld(t)
	for m := 1; m < 200; m++ {
		arch.Record(archive.HostEntity("Blade1"), archive.Sample{Minute: m, CPU: 0.5, Mem: 0.5})
	}
	v := ServerDetail(dep, arch, "Blade1", 200)
	for _, want := range []string{"SERVER DETAIL", "933 MHz", "p95", "day profile", "LES"} {
		if !strings.Contains(v, want) {
			t.Errorf("server detail missing %q:\n%s", want, v)
		}
	}
	if got := ServerDetail(dep, arch, "ghost", 0); !strings.Contains(got, "unknown server") {
		t.Errorf("unknown host detail = %q", got)
	}
}

func TestMessageView(t *testing.T) {
	events := []controller.Event{
		{Minute: 10, Note: "ALERT something"},
		{Minute: 20, Executed: true, Decision: &controller.Decision{
			Action: service.ActionScaleOut, Service: "FI", TargetHost: "Blade6",
			Trigger: monitor.Trigger{Minute: 20},
		}},
	}
	v := MessageView(events, 0)
	if !strings.Contains(v, "ALERT something") || !strings.Contains(v, "Out Blade6 (FI)") {
		t.Errorf("message view incomplete:\n%s", v)
	}
	if got := MessageView(nil, 0); !strings.Contains(got, "no messages") {
		t.Errorf("empty message view = %q", got)
	}
	limited := MessageView(events, 1)
	if !strings.Contains(limited, "1 earlier message") {
		t.Errorf("limit not applied:\n%s", limited)
	}
}
