package console

import (
	"strings"
	"testing"

	"autoglobe/internal/obs"
)

func TestObsView(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("autoglobe_controller_decisions_total", "action", "scaleUp", "trigger", "serviceOverloaded").Inc()
	r.Counter("autoglobe_heartbeats_total").Add(42)

	tr := obs.NewTracer(8)
	tr.Begin(100, obs.TraceTrigger{Kind: "serviceOverloaded", Entity: "app", Minute: 100})
	tr.Decide(obs.TraceDecision{
		Action: "scaleUp", Service: "app", InstanceID: "app-1",
		SourceHost: "weak1", TargetHost: "big1",
		Applicability: 0.82, HostScore: 0.61,
		Provenance: "0.82  IF cpuLoad IS high THEN scaleUp IS applicable",
	})
	tr.Dispatch(obs.TraceDispatch{Host: "big1", Op: "start", Attempts: 2, OK: true})
	tr.Dispatch(obs.TraceDispatch{Host: "weak1", Op: "stop", Attempts: 1, OK: true, Compensation: true})
	tr.End(obs.OutcomeExecuted, "")
	tr.Begin(105, obs.TraceTrigger{Kind: "serverIdle", Entity: "weak2", Minute: 105})
	tr.End(obs.OutcomeNoAction, "nothing to consolidate")

	v := ObsView(r, tr, 10)
	for _, want := range []string{
		"OBSERVABILITY",
		`autoglobe_controller_decisions_total{action="scaleUp",trigger="serviceOverloaded"} = 1`,
		"autoglobe_heartbeats_total = 42",
		"RECENT TRACES",
		"[  100] serviceOverloaded(app) -> executed",
		"scaleUp app inst=app-1 weak1->big1 applicability=0.82 hostScore=0.61",
		"IF cpuLoad IS high THEN scaleUp IS applicable",
		"dispatch start big1 attempts=2 ack",
		"dispatch stop weak1 attempts=1 ack (compensation)",
		"[  105] serverIdle(weak2) -> no-action (nothing to consolidate)",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("obs view missing %q:\n%s", want, v)
		}
	}
}

func TestObsViewTraceLimit(t *testing.T) {
	tr := obs.NewTracer(16)
	for m := 0; m < 5; m++ {
		tr.Begin(m, obs.TraceTrigger{Kind: "serverIdle", Entity: "h", Minute: m})
		tr.End(obs.OutcomeNoAction, "")
	}
	v := ObsView(nil, tr, 2)
	if !strings.Contains(v, "… 3 earlier traces") {
		t.Errorf("limit not applied:\n%s", v)
	}
	if strings.Contains(v, "[    0]") || !strings.Contains(v, "[    4]") {
		t.Errorf("wrong traces kept:\n%s", v)
	}
}

func TestObsViewDegradesGracefully(t *testing.T) {
	v := ObsView(nil, nil, 0)
	for _, want := range []string{"(metrics not attached)", "(traces not attached)"} {
		if !strings.Contains(v, want) {
			t.Errorf("nil view missing %q:\n%s", want, v)
		}
	}
	v = ObsView(obs.NewRegistry(), obs.NewTracer(1), 0)
	for _, want := range []string{"(no metrics recorded)", "(no traces recorded)"} {
		if !strings.Contains(v, want) {
			t.Errorf("empty view missing %q:\n%s", want, v)
		}
	}
}
