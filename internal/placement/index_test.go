package placement

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
)

// protStub mirrors the controller's protection semantics: a host is
// protected while the recorded minute is still in the future.
type protStub map[string]int

func (p protStub) HostProtected(host string, minute int) bool { return p[host] > minute }

func testCatalog(t *testing.T) *service.Catalog {
	t.Helper()
	cat, err := service.NewCatalog(
		&service.Service{Name: "web", Type: service.TypeInteractive,
			MemoryMBPerInstance: 512, MaxInstances: 20},
		&service.Service{Name: "app", Type: service.TypeInteractive,
			MemoryMBPerInstance: 1024, MaxInstances: 20},
		&service.Service{Name: "cache", Type: service.TypeInteractive,
			MemoryMBPerInstance: 2048, MinPerfIndex: 2, MaxInstances: 20},
		&service.Service{Name: "db", Type: service.TypeInteractive,
			MemoryMBPerInstance: 8192, MinPerfIndex: 5, Exclusive: true, MaxInstances: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func testHost(name string, pi float64, memMB int) cluster.Host {
	return cluster.Host{Name: name, Category: fmt.Sprintf("PI%g", pi), PerformanceIndex: pi,
		CPUs: 2, ClockMHz: 2000, CacheKB: 512, MemoryMB: memMB, SwapMB: 1024, TempMB: 4096}
}

// scanCandidates is the full-scan reference the index must agree with:
// walk the whole cluster, apply CanPlace and the query-time filters.
func scanCandidates(dep *service.Deployment, prot Protection, svc string, rel Rel, srcPI float64, minute int, exclude map[string]bool) []string {
	var out []string
	for _, name := range dep.Cluster().Names() {
		if exclude[name] {
			continue
		}
		if prot != nil && prot.HostProtected(name, minute) {
			continue
		}
		h, _ := dep.Cluster().Host(name)
		if !match(rel, h.PerformanceIndex, srcPI) {
			continue
		}
		if dep.CanPlace(svc, name) != nil {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func indexedNames(ix *Index, svc string, rel Rel, srcPI float64, minute int, exclude map[string]bool) []string {
	refs := ix.AppendCandidates(nil, svc, rel, srcPI, minute, exclude)
	out := make([]string, 0, len(refs))
	for _, r := range refs {
		out = append(out, r.Host.Name)
	}
	sort.Strings(out)
	return out
}

func assertParity(t *testing.T, dep *service.Deployment, ix *Index, prot Protection, minute int, step string) {
	t.Helper()
	pis := []float64{0, 1, 2, 5, 9}
	for _, svc := range dep.Catalog().Names() {
		for rel := RelAny; rel <= RelEqual; rel++ {
			for _, src := range pis {
				want := scanCandidates(dep, prot, svc, rel, src, minute, nil)
				got := indexedNames(ix, svc, rel, src, minute, nil)
				if len(want) != len(got) {
					t.Fatalf("%s: svc=%s rel=%d src=%g: index %v != scan %v", step, svc, rel, src, got, want)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s: svc=%s rel=%d src=%g: index %v != scan %v", step, svc, rel, src, got, want)
					}
				}
				if any := ix.AnyCandidate(svc, rel, src, minute, nil); any != (len(want) > 0) {
					t.Fatalf("%s: svc=%s rel=%d src=%g: AnyCandidate=%v, scan has %d", step, svc, rel, src, any, len(want))
				}
			}
		}
	}
}

func TestIndexMatchesScanOnBasicMutations(t *testing.T) {
	cl := cluster.MustNew(
		testHost("weak1", 1, 2048), testHost("weak2", 1, 2048),
		testHost("mid1", 2, 4096), testHost("big1", 9, 12288),
	)
	dep := service.NewDeployment(cl, testCatalog(t))
	prot := protStub{}
	ix := NewIndex(dep, func(h string) string { return "host/" + h })
	ix.SetProtection(prot)
	assertParity(t, dep, ix, prot, 0, "initial")

	inst, err := dep.Start("db", "big1")
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after start db")

	if _, err := dep.Start("app", "weak1"); err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after start app")

	if err := dep.Stop(inst.ID, true); err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after stop db")

	app := dep.InstancesOf("app")[0]
	if err := dep.Move(app.ID, "weak2"); err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after move app")

	if err := cl.Add(testHost("big2", 9, 12288)); err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after add host")

	if err := cl.Remove("mid1"); err != nil {
		t.Fatal(err)
	}
	assertParity(t, dep, ix, prot, 0, "after remove host")

	prot["weak2"] = 100
	assertParity(t, dep, ix, prot, 50, "protected minute 50")
	assertParity(t, dep, ix, prot, 100, "protection expired")
}

func TestIndexExcludeAndEntityKey(t *testing.T) {
	cl := cluster.MustNew(testHost("a", 1, 2048), testHost("b", 1, 2048))
	dep := service.NewDeployment(cl, testCatalog(t))
	ix := NewIndex(dep, func(h string) string { return "host/" + h })
	got := indexedNames(ix, "web", RelAny, 0, 0, map[string]bool{"a": true})
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("exclude: got %v, want [b]", got)
	}
	r, ok := ix.Ref("a")
	if !ok || r.Entity != "host/a" {
		t.Fatalf("Ref(a) = %+v, %v", r, ok)
	}
}

// TestIndexMatchesScanRandomized drives 10k random mutate/select steps
// — instance starts, stops, moves, host pooling and unpooling,
// protection-mode churn — and asserts after every step that the
// incrementally maintained candidate sets equal the full-scan
// reference for a random query, with periodic exhaustive sweeps.
func TestIndexMatchesScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cl := cluster.MustNew()
	hostSeq := 0
	addHost := func() {
		hostSeq++
		pis := []float64{1, 1, 1, 2, 2, 5, 9}
		pi := pis[rng.Intn(len(pis))]
		mem := []int{2048, 4096, 8192, 12288}[rng.Intn(4)]
		_ = cl.Add(testHost(fmt.Sprintf("h%03d", hostSeq), pi, mem))
	}
	for i := 0; i < 24; i++ {
		addHost()
	}
	dep := service.NewDeployment(cl, testCatalog(t))
	prot := protStub{}
	ix := NewIndex(dep, func(h string) string { return "host/" + h })
	ix.SetProtection(prot)

	svcs := dep.Catalog().Names()
	randHost := func() string {
		names := cl.Names()
		if len(names) == 0 {
			return ""
		}
		return names[rng.Intn(len(names))]
	}
	minute := 0
	for step := 0; step < 10000; step++ {
		minute += rng.Intn(2)
		switch op := rng.Intn(10); {
		case op < 4: // start
			if h := randHost(); h != "" {
				_, _ = dep.Start(svcs[rng.Intn(len(svcs))], h)
			}
		case op < 6: // stop
			if all := dep.Instances(); len(all) > 0 {
				_ = dep.Stop(all[rng.Intn(len(all))].ID, rng.Intn(2) == 0)
			}
		case op < 8: // move
			if all := dep.Instances(); len(all) > 0 {
				if h := randHost(); h != "" {
					_ = dep.Move(all[rng.Intn(len(all))].ID, h)
				}
			}
		case op < 9: // pool or unpool a host
			if rng.Intn(2) == 0 || cl.Len() < 8 {
				addHost()
			} else if h := randHost(); h != "" && dep.CountOn(h) == 0 {
				_ = cl.Remove(h)
			}
		default: // protection churn
			if h := randHost(); h != "" {
				if rng.Intn(2) == 0 {
					prot[h] = minute + rng.Intn(30)
				} else {
					delete(prot, h)
				}
			}
		}

		// Spot-check one random query per step, full sweep every 500.
		svc := svcs[rng.Intn(len(svcs))]
		rel := Rel(rng.Intn(4))
		src := []float64{0, 1, 2, 5, 9}[rng.Intn(5)]
		var exclude map[string]bool
		if rng.Intn(4) == 0 {
			if h := randHost(); h != "" {
				exclude = map[string]bool{h: true}
			}
		}
		want := scanCandidates(dep, prot, svc, rel, src, minute, exclude)
		got := indexedNames(ix, svc, rel, src, minute, exclude)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("step %d: svc=%s rel=%d src=%g: index %v != scan %v", step, svc, rel, src, got, want)
		}
		if any := ix.AnyCandidate(svc, rel, src, minute, exclude); any != (len(want) > 0) {
			t.Fatalf("step %d: AnyCandidate=%v, scan has %d", step, any, len(want))
		}
		if step%500 == 0 {
			assertParity(t, dep, ix, prot, minute, fmt.Sprintf("sweep@%d", step))
		}
	}
}

// TestAppendCandidatesReusesBuffer pins the zero-allocation contract of
// steady-state candidate enumeration: appending into a warmed buffer
// must not allocate.
func TestAppendCandidatesCanonicalOrder(t *testing.T) {
	cl := cluster.MustNew(
		testHost("z9", 9, 12288), testHost("a1", 1, 2048),
		testHost("m2", 2, 4096), testHost("b1", 1, 2048),
	)
	dep := service.NewDeployment(cl, testCatalog(t))
	ix := NewIndex(dep, nil)
	refs := ix.AppendCandidates(nil, "web", RelAny, 0, 0, nil)
	var got []string
	for _, r := range refs {
		got = append(got, r.Host.Name)
	}
	// Ascending PI buckets, insertion order within: a1,b1 (PI 1), m2, z9.
	want := []string{"a1", "b1", "m2", "z9"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("canonical order %v, want %v", got, want)
	}
}
