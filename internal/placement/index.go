// Package placement maintains an incrementally updated feasibility
// index over a deployment: for every service, the set of hosts an
// instance could be placed on right now (Deployment.CanPlace), bucketed
// by performance index so the server-selection controller's
// performance-relation filter (scale-up wants a strictly faster host,
// scale-down a strictly slower one, move an equal one) is a bucket walk
// instead of a full cluster scan.
//
// The index never re-derives placement logic: feasibility is always the
// verdict of the deployment's own CanPlace, recomputed for exactly one
// host column whenever a mutation touches that host (instance started,
// stopped or moved; host pooled or unpooled) via the Cluster.Watch and
// Deployment.Watch observer hooks. Protection mode is deliberately NOT
// materialized — it is minute-scoped, self-expiring state owned by the
// controller, so the index consults a Protection callback at query time
// instead of chasing a second source of truth.
//
// Candidate enumeration order is canonical: performance-index buckets in
// ascending PI order, hosts within a bucket in cluster insertion order.
// This differs from the raw cluster order a full scan would produce, but
// any consumer that reduces candidates with a total-order comparator
// (the server-selection argmax does) is order-independent, and set
// equality with the full scan is what the parity tests assert.
package placement

import (
	"sort"

	"autoglobe/internal/cluster"
	"autoglobe/internal/service"
)

// Protection reports minute-scoped host protection. The controller
// implements it; a nil Protection protects nothing.
type Protection interface {
	HostProtected(host string, minute int) bool
}

// Rel is the performance-index relation a candidate host must satisfy
// relative to a source performance index.
type Rel int

const (
	// RelAny accepts every performance level (placement actions:
	// scale-out, start).
	RelAny Rel = iota
	// RelAbove requires a strictly higher performance index (scale-up).
	RelAbove
	// RelBelow requires a strictly lower performance index (scale-down).
	RelBelow
	// RelEqual requires the same performance index (move).
	RelEqual
)

// HostRef is the index's handle on one pooled host: the immutable host
// attributes plus the precomputed archive entity key, so hot-path
// consumers never re-derive either.
type HostRef struct {
	// Host is the host's static description (a value copy; cluster
	// hosts are immutable once pooled).
	Host cluster.Host
	// Entity is the host's load-archive entity key, cached at pooling
	// time because deriving it concatenates strings.
	Entity string
	// seq orders hosts within a bucket by cluster insertion order.
	seq int64
}

// bucket holds the feasible hosts of one (service, performance index)
// pair, ordered by seq.
type bucket struct {
	refs []*HostRef
}

// insert adds r keeping seq order. The common case — a freshly pooled
// host carrying the highest seq so far — is an append.
func (b *bucket) insert(r *HostRef) {
	n := len(b.refs)
	if n == 0 || b.refs[n-1].seq < r.seq {
		b.refs = append(b.refs, r)
		return
	}
	i := sort.Search(n, func(i int) bool { return b.refs[i].seq >= r.seq })
	b.refs = append(b.refs, nil)
	copy(b.refs[i+1:], b.refs[i:])
	b.refs[i] = r
}

// remove deletes the ref with r's seq, if present.
func (b *bucket) remove(r *HostRef) {
	i := sort.Search(len(b.refs), func(i int) bool { return b.refs[i].seq >= r.seq })
	if i >= len(b.refs) || b.refs[i].seq != r.seq {
		return
	}
	b.refs = append(b.refs[:i], b.refs[i+1:]...)
}

// svcIndex is one service's candidate-host structure.
type svcIndex struct {
	// pis lists the performance indices with a non-empty bucket, sorted
	// ascending — the walk order of AppendCandidates.
	pis []float64
	// buckets maps a performance index to its feasible hosts.
	buckets map[float64]*bucket
	// member marks the hosts currently indexed as feasible, so a host
	// refresh knows whether to insert, remove or leave each service.
	member map[string]bool
}

func newSvcIndex() *svcIndex {
	return &svcIndex{buckets: make(map[float64]*bucket), member: make(map[string]bool)}
}

func (si *svcIndex) add(r *HostRef) {
	pi := r.Host.PerformanceIndex
	b, ok := si.buckets[pi]
	if !ok {
		b = &bucket{}
		si.buckets[pi] = b
		i := sort.SearchFloat64s(si.pis, pi)
		si.pis = append(si.pis, 0)
		copy(si.pis[i+1:], si.pis[i:])
		si.pis[i] = pi
	}
	b.insert(r)
	si.member[r.Host.Name] = true
}

func (si *svcIndex) drop(r *HostRef) {
	pi := r.Host.PerformanceIndex
	b, ok := si.buckets[pi]
	if !ok {
		return
	}
	b.remove(r)
	delete(si.member, r.Host.Name)
	if len(b.refs) == 0 {
		delete(si.buckets, pi)
		i := sort.SearchFloat64s(si.pis, pi)
		if i < len(si.pis) && si.pis[i] == pi {
			si.pis = append(si.pis[:i], si.pis[i+1:]...)
		}
	}
}

// Index is the feasibility index over one deployment. It is maintained
// synchronously by the deployment's mutation hooks and therefore shares
// the deployment's concurrency contract: mutations and index queries
// must not race (the controller runs its decision loop on a single
// goroutine; parallel candidate *scoring* only reads).
type Index struct {
	dep       *service.Deployment
	entityKey func(host string) string
	prot      Protection

	services map[string]*svcIndex
	refs     map[string]*HostRef
	nextSeq  int64

	// svcNames snapshots the catalog's service names once — the catalog
	// is immutable after construction — so a host refresh loops a slice
	// instead of copying names per mutation.
	svcNames []string
}

// NewIndex builds the index over the deployment's current state and
// hooks it into the deployment's and cluster's mutation observers so it
// stays consistent from then on. entityKey derives a host's load-archive
// entity key (e.g. archive.HostEntity); nil leaves Entity empty.
func NewIndex(dep *service.Deployment, entityKey func(host string) string) *Index {
	if entityKey == nil {
		entityKey = func(string) string { return "" }
	}
	ix := &Index{
		dep:       dep,
		entityKey: entityKey,
		services:  make(map[string]*svcIndex),
		refs:      make(map[string]*HostRef),
		svcNames:  dep.Catalog().Names(),
	}
	for _, name := range ix.svcNames {
		ix.services[name] = newSvcIndex()
	}
	for _, h := range dep.Cluster().Hosts() {
		ix.addHost(h)
	}
	dep.Cluster().Watch(func(h cluster.Host, added bool) {
		if added {
			ix.addHost(h)
		} else {
			ix.removeHost(h.Name)
		}
	})
	dep.Watch(ix.RefreshHost)
	return ix
}

// SetProtection installs the protection-mode oracle consulted at query
// time. Nil protects nothing.
func (ix *Index) SetProtection(p Protection) { ix.prot = p }

// addHost pools a host: mint its ref and compute its feasibility column.
func (ix *Index) addHost(h cluster.Host) {
	ix.nextSeq++
	ix.refs[h.Name] = &HostRef{Host: h, Entity: ix.entityKey(h.Name), seq: ix.nextSeq}
	ix.RefreshHost(h.Name)
}

// removeHost unpools a host, dropping it from every service's buckets.
func (ix *Index) removeHost(name string) {
	r, ok := ix.refs[name]
	if !ok {
		return
	}
	for _, svc := range ix.svcNames {
		if si := ix.services[svc]; si.member[name] {
			si.drop(r)
		}
	}
	delete(ix.refs, name)
}

// RefreshHost recomputes one host's feasibility for every catalog
// service by asking the deployment's authoritative CanPlace. It is the
// sole write path after construction — every mutation hook funnels here
// — so index feasibility can never drift from CanPlace's verdict.
func (ix *Index) RefreshHost(name string) {
	r, ok := ix.refs[name]
	if !ok {
		return // mutation on an unpooled host (e.g. force-stop after host death)
	}
	for _, svc := range ix.svcNames {
		si := ix.services[svc]
		feasible := ix.dep.CanPlace(svc, name) == nil
		switch {
		case feasible && !si.member[name]:
			si.add(r)
		case !feasible && si.member[name]:
			si.drop(r)
		}
	}
}

// Ref returns the index's handle on a pooled host.
func (ix *Index) Ref(name string) (*HostRef, bool) {
	r, ok := ix.refs[name]
	return r, ok
}

// match reports whether a bucket's performance index satisfies the
// relation against the source PI.
func match(rel Rel, pi, srcPI float64) bool {
	switch rel {
	case RelAbove:
		return pi > srcPI
	case RelBelow:
		return pi < srcPI
	case RelEqual:
		return pi == srcPI
	}
	return true
}

// AppendCandidates appends every host on which the service can be
// placed right now, whose performance index satisfies rel against
// srcPI, that is not excluded and not in protection mode at the given
// minute. Candidates are appended in canonical index order (ascending
// PI bucket, insertion order within the bucket); buf is reused
// append-style so steady-state enumeration allocates nothing.
func (ix *Index) AppendCandidates(buf []*HostRef, svc string, rel Rel, srcPI float64, minute int, exclude map[string]bool) []*HostRef {
	si, ok := ix.services[svc]
	if !ok {
		return buf
	}
	if rel == RelEqual {
		if b, ok := si.buckets[srcPI]; ok {
			buf = ix.appendBucket(buf, b, minute, exclude)
		}
		return buf
	}
	for _, pi := range si.pis {
		if !match(rel, pi, srcPI) {
			continue
		}
		buf = ix.appendBucket(buf, si.buckets[pi], minute, exclude)
	}
	return buf
}

func (ix *Index) appendBucket(buf []*HostRef, b *bucket, minute int, exclude map[string]bool) []*HostRef {
	for _, r := range b.refs {
		if exclude[r.Host.Name] {
			continue
		}
		if ix.prot != nil && ix.prot.HostProtected(r.Host.Name, minute) {
			continue
		}
		buf = append(buf, r)
	}
	return buf
}

// AnyCandidate reports whether at least one candidate exists, short-
// circuiting on the first hit — the feasibility probe behind the
// controller's anyTarget, reduced from a full cluster scan to (usually)
// one bucket peek.
func (ix *Index) AnyCandidate(svc string, rel Rel, srcPI float64, minute int, exclude map[string]bool) bool {
	si, ok := ix.services[svc]
	if !ok {
		return false
	}
	if rel == RelEqual {
		b, ok := si.buckets[srcPI]
		return ok && ix.anyInBucket(b, minute, exclude)
	}
	for _, pi := range si.pis {
		if !match(rel, pi, srcPI) {
			continue
		}
		if ix.anyInBucket(si.buckets[pi], minute, exclude) {
			return true
		}
	}
	return false
}

func (ix *Index) anyInBucket(b *bucket, minute int, exclude map[string]bool) bool {
	for _, r := range b.refs {
		if exclude[r.Host.Name] {
			continue
		}
		if ix.prot != nil && ix.prot.HostProtected(r.Host.Name, minute) {
			continue
		}
		return true
	}
	return false
}
