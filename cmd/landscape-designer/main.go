// Command landscape-designer computes a statically optimized
// pre-assignment of services to servers (the paper's planned landscape
// designer tool) for the paper's installation, or for a landscape
// described in the declarative XML language.
//
// Usage:
//
//	landscape-designer                          # paper landscape, Table 4 demands
//	landscape-designer -multiplier 1.35
//	landscape-designer -landscape my.xml        # uses declared users as demand
package main

import (
	"flag"
	"fmt"
	"os"

	"autoglobe/internal/cluster"
	"autoglobe/internal/designer"
	"autoglobe/internal/service"
	"autoglobe/internal/spec"
	"autoglobe/internal/workload"
)

func main() {
	var (
		landscape  = flag.String("landscape", "", "XML landscape description (default: the paper's installation)")
		multiplier = flag.Float64("multiplier", 1.0, "scale expected demands")
	)
	flag.Parse()

	var (
		plan *designer.Plan
		err  error
	)
	if *landscape != "" {
		plan, err = planFromXML(*landscape, *multiplier)
	} else {
		plan, err = planPaper(*multiplier)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan)
}

func planPaper(multiplier float64) (*designer.Plan, error) {
	cl := cluster.Paper()
	cat := service.PaperCatalog(service.FullMobility)
	users := service.PaperUsers()
	instances := map[string]int{"FI": 3, "LES": 4, "PP": 2, "HR": 1, "CRM": 1, "BW": 2}
	var demands []designer.Demand
	for svcName, u := range users {
		svc, _ := cat.Get(svcName)
		n := instances[svcName]
		demands = append(demands, designer.Demand{
			Service:          svcName,
			Instances:        n,
			UnitsPerInstance: u * multiplier * workload.DefaultPeakActivity / float64(svc.UsersPerUnit) / float64(n),
		})
	}
	cost := workload.DefaultCostModel()
	erpPeak := (600*0.8 + 900 + 450 + 300*0.9) * multiplier * workload.DefaultPeakActivity / 150
	demands = append(demands,
		designer.Demand{Service: "CI-ERP", Instances: 1,
			UnitsPerInstance: (600 + 900 + 450 + 300) * multiplier * workload.DefaultPeakActivity / 150 * cost.CIShare},
		designer.Demand{Service: "CI-CRM", Instances: 1,
			UnitsPerInstance: 300 * multiplier * workload.DefaultPeakActivity / 150 * cost.CIShare},
		designer.Demand{Service: "CI-BW", Instances: 1,
			UnitsPerInstance: 60 * multiplier * workload.DefaultPeakActivity / 15 * cost.CIShare},
		designer.Demand{Service: "DB-ERP", Instances: 1, UnitsPerInstance: erpPeak * cost.DBShare},
		designer.Demand{Service: "DB-CRM", Instances: 1,
			UnitsPerInstance: 300 * 1.1 * multiplier * workload.DefaultPeakActivity / 150 * cost.DBShare},
		designer.Demand{Service: "DB-BW", Instances: 1,
			UnitsPerInstance: 60 * 8 * multiplier * workload.DefaultPeakActivity / 15 * cost.DBShare},
	)
	return designer.Design(cl, cat, demands)
}

func planFromXML(path string, multiplier float64) (*designer.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := spec.Parse(f)
	if err != nil {
		return nil, err
	}
	cl, err := l.BuildCluster()
	if err != nil {
		return nil, err
	}
	cat, err := l.BuildCatalog()
	if err != nil {
		return nil, err
	}
	var demands []designer.Demand
	for _, s := range l.Services {
		n := len(s.Instances)
		if n == 0 {
			n = 1
		}
		perUnit := s.UsersPerUnit
		if perUnit == 0 {
			perUnit = 150
		}
		demands = append(demands, designer.Demand{
			Service:          s.Name,
			Instances:        n,
			UnitsPerInstance: s.Users * multiplier * workload.DefaultPeakActivity / float64(perUnit) / float64(n),
		})
	}
	return designer.Design(cl, cat, demands)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "landscape-designer:", err)
	os.Exit(1)
}
