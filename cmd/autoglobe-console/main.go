// Command autoglobe-console runs a scenario and renders the controller
// console of the paper's Figure 8: server view, service view and
// message view, optionally at several checkpoints during the run.
//
// Usage:
//
//	autoglobe-console -scenario fm -multiplier 1.15 -hours 48
//	autoglobe-console -scenario cm -checkpoints 4 -messages 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autoglobe/internal/console"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
)

func main() {
	var (
		scenario    = flag.String("scenario", "fm", "scenario: static, cm or fm")
		multiplier  = flag.Float64("multiplier", 1.15, "user population multiplier")
		hours       = flag.Int("hours", 24, "simulated hours")
		checkpoints = flag.Int("checkpoints", 1, "number of console snapshots during the run")
		messages    = flag.Int("messages", 20, "messages to show in the message view")
		detail      = flag.String("detail", "", "also render the detail panel for this server")
	)
	flag.Parse()

	m, err := parseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	cfg := simulator.PaperConfig(m, *multiplier)
	cfg.Hours = *hours
	sim, err := simulator.New(cfg)
	if err != nil {
		fatal(err)
	}

	total := *hours * 60
	every := total
	if *checkpoints > 1 {
		every = total / *checkpoints
	}
	for minute := 0; minute < total; minute++ {
		if err := sim.Step(minute); err != nil {
			fatal(err)
		}
		if (minute+1)%every == 0 || minute == total-1 {
			fmt.Printf("=== %s scenario, %.0f%% users — minute %d (day %d, %02d:%02d) ===\n",
				m, *multiplier*100, minute, minute/1440+1, (minute/60)%24, minute%60)
			fmt.Println(console.ServerView(sim.Deployment(), sim.Archive()))
			fmt.Println()
			fmt.Println(console.ServiceView(sim.Deployment(), sim.Archive()))
			fmt.Println()
			fmt.Println(console.MessageView(sim.Controller().Events(), *messages))
			if *detail != "" {
				fmt.Println()
				fmt.Println(console.ServerDetail(sim.Deployment(), sim.Archive(), *detail, minute))
			}
			fmt.Println()
		}
	}
}

func parseScenario(s string) (service.Mobility, error) {
	switch strings.ToLower(s) {
	case "static":
		return service.Static, nil
	case "cm", "constrained":
		return service.ConstrainedMobility, nil
	case "fm", "full":
		return service.FullMobility, nil
	}
	return 0, fmt.Errorf("unknown scenario %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoglobe-console:", err)
	os.Exit(1)
}
