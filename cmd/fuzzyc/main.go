// Command fuzzyc evaluates fuzzy rule bases from the command line: it
// parses rules in AutoGlobe's rule language, validates them against the
// controller's vocabulary, and runs one inference cycle against crisp
// inputs given as name=value pairs.
//
// Usage:
//
//	fuzzyc -rules rules.txt cpuLoad=0.9 performanceIndex=2 ...
//	echo 'IF cpuLoad IS high THEN scaleUp IS applicable' | fuzzyc cpuLoad=0.9
//	fuzzyc -builtin serviceOverloaded cpuLoad=0.85 memLoad=0.4 instanceLoad=0.8 \
//	       serviceLoad=0.75 instancesOnServer=2 instancesOfService=3 performanceIndex=1
//
// The replay subcommand validates a candidate rule file exactly like a
// coordinator push would and diffs it against the built-in (or a given)
// baseline over real archived load from a tsdb-backed archive
// directory — the offline first step of promoting a rule edit:
//
//	fuzzyc replay -name serviceIdle -rules candidate.rules \
//	       -archive-dir /var/lib/autoglobe/archive instancesOfService=5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/monitor"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	var (
		rulesPath = flag.String("rules", "", "file with rules in the rule language (default: stdin)")
		builtin   = flag.String("builtin", "", "evaluate a built-in rule base instead: serviceOverloaded, serviceIdle, serverOverloaded, serverIdle")
		defuzz    = flag.String("defuzz", "leftmax", "defuzzifier: leftmax, meanofmax, centroid")
		dump      = flag.Bool("dump", false, "print the parsed rules before evaluating")
	)
	flag.Parse()

	inputs, err := parseInputs(flag.Args())
	if err != nil {
		fatal(err)
	}

	var d fuzzy.Defuzzifier
	switch strings.ToLower(*defuzz) {
	case "leftmax":
		d = fuzzy.LeftMax{}
	case "meanofmax":
		d = fuzzy.MeanOfMax{}
	case "centroid":
		d = fuzzy.Centroid{}
	default:
		fatal(fmt.Errorf("unknown defuzzifier %q", *defuzz))
	}

	var rb *fuzzy.RuleBase
	switch {
	case *builtin != "":
		all := controller.DefaultActionRules()
		var ok bool
		rb, ok = all[monitor.TriggerKind(*builtin)]
		if !ok {
			fatal(fmt.Errorf("unknown built-in rule base %q", *builtin))
		}
	default:
		src, err := readRules(*rulesPath)
		if err != nil {
			fatal(err)
		}
		rules, err := fuzzy.Parse(src)
		if err != nil {
			fatal(err)
		}
		rb, err = fuzzy.NewRuleBase("cli", controller.ActionVocabulary(), rules)
		if err != nil {
			fatal(err)
		}
	}

	if *dump {
		for i, r := range rb.Rules() {
			fmt.Printf("rule %2d: %s\n", i+1, r)
		}
	}

	res, err := fuzzy.NewEngine(d).Infer(rb, inputs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rule base %q (%d rules), defuzzifier %s\n", rb.Name, rb.Len(), d.Name())
	for i, truth := range res.Fired {
		if truth > 0 {
			fmt.Printf("  fired %.2f: %s\n", truth, rb.Rules()[i])
		}
	}
	names := make([]string, 0, len(res.Outputs))
	for n := range res.Outputs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if res.Outputs[names[i]] != res.Outputs[names[j]] {
			return res.Outputs[names[i]] > res.Outputs[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Println("outputs:")
	for _, n := range names {
		fmt.Printf("  %-20s %.3f\n", n, res.Outputs[n])
	}
}

func readRules(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseInputs(args []string) (map[string]float64, error) {
	inputs := make(map[string]float64, len(args))
	for _, a := range args {
		name, val, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not name=value", a)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("argument %q: %v", a, err)
		}
		inputs[name] = v
	}
	return inputs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzyc:", err)
	os.Exit(1)
}
