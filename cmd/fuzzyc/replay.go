package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"autoglobe/internal/archive"
	"autoglobe/internal/controller"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/rules"
	"autoglobe/internal/tsdb"
)

// runReplay is the offline half of the rule administration loop: it
// validates a candidate rule file exactly like a coordinator push would
// (parse, vocabulary check, compile — addressed by rule-base name), and
// optionally replays archived load from a tsdb-backed archive directory
// through both the candidate and the currently-default base, reporting
// every sample where the two disagree on the winning action. An admin
// can judge a rule edit against yesterday's real load before pushing it
// anywhere near a live controller.
func runReplay(args []string) {
	fs := flag.NewFlagSet("fuzzyc replay", flag.ExitOnError)
	var (
		name       = fs.String("name", "", "rule-base name the candidate targets (serviceOverloaded, serverIdle, select/placement, ...); picks the vocabulary and the default baseline")
		rulesPath  = fs.String("rules", "", "candidate rule file (default: stdin)")
		basePath   = fs.String("baseline", "", "baseline rule file to diff against (default: the built-in source for -name)")
		archiveDir = fs.String("archive-dir", "", "tsdb-backed archive directory to replay (omit to only validate the candidate)")
		from       = fs.Int("from", 0, "first archived minute to replay")
		to         = fs.Int("to", -1, "last archived minute to replay (-1: everything archived)")
		maxReport  = fs.Int("max-report", 10, "print at most this many disagreeing samples")
	)
	fs.Parse(args)

	if *name == "" {
		fatal(fmt.Errorf("replay: -name is required (it selects vocabulary and baseline)"))
	}
	src, err := readRules(*rulesPath)
	if err != nil {
		fatal(err)
	}
	reg := rules.New(controller.RuleVocabulary)
	cand, err := reg.Validate(*name, src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("candidate %s: %d rules, hash %.12s — valid\n", cand.Name, cand.Base.Len(), cand.Hash)

	defaults, err := parseInputs(fs.Args())
	if err != nil {
		fatal(err)
	}

	baseSrc, ok := controller.DefaultRuleSources()[*name]
	if *basePath != "" {
		baseSrc, err = readRules(*basePath)
		if err != nil {
			fatal(err)
		}
	} else if !ok {
		fatal(fmt.Errorf("replay: no built-in baseline for %q — pass -baseline", *name))
	}
	baseline, err := reg.Validate(*name, baseSrc)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w", err))
	}

	if *archiveDir == "" {
		return
	}
	arch, err := archive.NewBacked(*archiveDir, 0, tsdb.Options{})
	if err != nil {
		fatal(err)
	}
	defer arch.Close()
	last, ok := arch.LastMinute()
	if !ok {
		fatal(fmt.Errorf("replay: archive %s holds no samples", *archiveDir))
	}
	if *to < 0 || *to > last {
		*to = last
	}

	entities := replayEntities(arch, *name)
	if len(entities) == 0 {
		fatal(fmt.Errorf("replay: archive %s holds no entities for rule base %q", *archiveDir, *name))
	}
	engine := fuzzy.NewEngine(fuzzy.LeftMax{})
	inputs := make(map[string]float64)
	vars := unionInputVars(baseline.Base, cand.Base)

	samples, diffs, reported := 0, 0, 0
	shifts := make(map[string]int)
	for _, entity := range entities {
		for _, s := range arch.Window(entity, *from, *to) {
			samples++
			for _, v := range vars {
				inputs[v] = defaults[v]
			}
			sampleInputs(inputs, entity, s.CPU, s.Mem)
			wasAct, was, err := winner(engine, baseline.Base, inputs)
			if err != nil {
				fatal(err)
			}
			nowAct, now, err := winner(engine, cand.Base, inputs)
			if err != nil {
				fatal(err)
			}
			if wasAct == nowAct {
				continue
			}
			diffs++
			shifts[wasAct+" -> "+nowAct]++
			if reported < *maxReport {
				fmt.Printf("  minute %4d %-14s cpu=%.2f mem=%.2f: baseline %s, candidate %s\n",
					s.Minute, entity, s.CPU, s.Mem, was, now)
				reported++
			}
		}
	}
	fmt.Printf("replayed %d samples over %d entities (minutes %d..%d): %d decisions differ\n",
		samples, len(entities), *from, *to, diffs)
	keys := make([]string, 0, len(shifts))
	for k := range shifts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %5d × %s\n", shifts[k], k)
	}
}

// replayEntities picks the archived entities whose load feeds the named
// rule base: service bases replay the per-service series, everything
// else (server bases and select/ bases, which score hosts) replays the
// per-host series.
func replayEntities(arch *archive.Archive, name string) []string {
	wantService := strings.HasPrefix(name, "service")
	var out []string
	for _, e := range arch.Entities() {
		isService := strings.HasPrefix(e, "svc/")
		isInstance := strings.HasPrefix(e, "inst/")
		if isInstance {
			continue
		}
		if isService == wantService {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// sampleInputs maps one archived sample onto the vocabulary: a host
// sample asserts the host load variables, a service sample the service
// load (and, as an approximation of a balanced service, the per-instance
// load). Everything else stays at its default.
func sampleInputs(inputs map[string]float64, entity string, cpu, mem float64) {
	if strings.HasPrefix(entity, "svc/") {
		if _, ok := inputs[controller.VarServiceLoad]; ok {
			inputs[controller.VarServiceLoad] = cpu
		}
		if _, ok := inputs[controller.VarInstanceLoad]; ok {
			inputs[controller.VarInstanceLoad] = cpu
		}
		return
	}
	if _, ok := inputs[controller.VarCPULoad]; ok {
		inputs[controller.VarCPULoad] = cpu
	}
	if _, ok := inputs[controller.VarMemLoad]; ok {
		inputs[controller.VarMemLoad] = mem
	}
}

// unionInputVars collects every input variable either base references,
// so the replay asserts a complete measurement set for both.
func unionInputVars(bases ...*fuzzy.RuleBase) []string {
	seen := make(map[string]bool)
	for _, rb := range bases {
		for _, r := range rb.Rules() {
			for v := range r.InputVars() {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// winner reduces one inference to the comparable decision: the output
// variable with the highest applicability, "(none)" if nothing fired.
// Ties break lexicographically so the diff is deterministic. Returns
// the bare action (the identity compared and tallied) and a rendering
// with the applicability for the per-sample report.
func winner(engine *fuzzy.Engine, rb *fuzzy.RuleBase, inputs map[string]float64) (action, rendered string, err error) {
	res, err := engine.Infer(rb, inputs)
	if err != nil {
		return "", "", err
	}
	defer res.Release()
	best, bestVal := "(none)", 0.0
	names := make([]string, 0, len(res.Outputs))
	for n := range res.Outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v := res.Outputs[n]; v > bestVal {
			best, bestVal = n, v
		}
	}
	if bestVal == 0 {
		return "(none)", "(none)", nil
	}
	return best, fmt.Sprintf("%s(%.2f)", best, bestVal), nil
}

// usageReplay is appended to the main usage text.
const usageReplay = `
subcommands:
  replay    validate a candidate rule file and diff it against a baseline
            over archived load (fuzzyc replay -h)
`

func init() {
	// Keep flag.Usage aware of the subcommand without restructuring the
	// single-command default path.
	prev := flag.Usage
	flag.Usage = func() {
		prev()
		fmt.Fprint(os.Stderr, usageReplay)
	}
}
