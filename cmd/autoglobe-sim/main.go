// Command autoglobe-sim runs the paper's SAP-installation simulation for
// one scenario and reports per-host load statistics, the controller's
// action log, and (optionally) full per-minute CSV time series for
// plotting the paper's figures.
//
// Usage:
//
//	autoglobe-sim -scenario fm -multiplier 1.15 -hours 80 -csv loads.csv
//	autoglobe-sim -scenario static -multiplier 1.10 -record FI
//	autoglobe-sim -table7
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"autoglobe/internal/experiments"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
	"autoglobe/internal/spec"
)

func main() {
	var (
		scenario      = flag.String("scenario", "fm", "scenario: static, cm or fm")
		multiplier    = flag.Float64("multiplier", 1.15, "user population multiplier (1.0 = Table 4 baseline)")
		hours         = flag.Int("hours", 80, "simulated hours")
		seed          = flag.Uint64("seed", 1, "noise and failure seed")
		record        = flag.String("record", "", "comma-separated services whose per-host curves to print (e.g. FI)")
		csvPath       = flag.String("csv", "", "write per-minute host loads as CSV to this file")
		recordCSV     = flag.String("recordcsv", "", "with -record, write the per-service curves as CSV to this file")
		actions       = flag.Bool("actions", false, "print the full controller action log")
		failures      = flag.Float64("failures", 0, "injected instance crashes per simulated day")
		table7        = flag.Bool("table7", false, "run the full Table 7 sweep instead of a single scenario")
		landscape     = flag.String("landscape", "", "run a declarative XML landscape instead of the paper scenario")
		explain       = flag.Bool("explain", false, "with -actions, print the rules behind each decision")
		seeds         = flag.Int("seeds", 1, "with -table7, repeat the sweep for seeds 1..N")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "with -table7, parallel simulator runs (1 = sequential; results are identical either way)")
		dumpLandscape = flag.Bool("dump-landscape", false, "print the paper scenario as declarative XML and exit")
	)
	flag.Parse()

	// Reject nonsensical parameters with a clear message before any
	// work starts — a negative worker count or zero-hour run would
	// otherwise surface as a confusing failure deep in the sweep engine.
	switch {
	case *hours <= 0:
		fatal(fmt.Errorf("-hours %d must be positive", *hours))
	case *multiplier <= 0:
		fatal(fmt.Errorf("-multiplier %g must be positive", *multiplier))
	case *failures < 0:
		fatal(fmt.Errorf("-failures %g must not be negative", *failures))
	case *seeds < 1:
		fatal(fmt.Errorf("-seeds %d must be at least 1", *seeds))
	case *workers < 1:
		fatal(fmt.Errorf("-workers %d must be at least 1", *workers))
	case *explain && !*actions:
		fatal(fmt.Errorf("-explain requires -actions"))
	case *recordCSV != "" && *record == "":
		fatal(fmt.Errorf("-recordcsv requires -record"))
	case *landscape != "" && *table7:
		fatal(fmt.Errorf("-landscape and -table7 are mutually exclusive"))
	}

	if *dumpLandscape {
		m, err := parseScenario(*scenario)
		if err != nil {
			fatal(err)
		}
		l, err := spec.Paper(m, *multiplier)
		if err != nil {
			fatal(err)
		}
		if err := l.Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *table7 {
		for s := uint64(1); s <= uint64(*seeds); s++ {
			res, err := experiments.Table7(experiments.Table7Options{Hours: *hours, Seed: s, Workers: *workers})
			if err != nil {
				fatal(err)
			}
			if *seeds > 1 {
				fmt.Printf("--- seed %d ---\n", s)
			}
			fmt.Println(res)
		}
		return
	}

	var sim *simulator.Simulator
	if *landscape != "" {
		f, err := os.Open(*landscape)
		if err != nil {
			fatal(err)
		}
		l, err := spec.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sim, err = simulator.FromLandscape(l)
		if err != nil {
			fatal(err)
		}
	} else {
		m, err := parseScenario(*scenario)
		if err != nil {
			fatal(err)
		}
		cfg := simulator.PaperConfig(m, *multiplier)
		cfg.Hours = *hours
		cfg.Seed = *seed
		cfg.FailuresPerDay = *failures
		if *record != "" {
			cfg.RecordServices = strings.Split(*record, ",")
		}
		var err2 error
		sim, err2 = simulator.New(cfg)
		if err2 != nil {
			fatal(err2)
		}
	}
	res, err := sim.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Println(res)
	fmt.Printf("\n%-12s %6s %6s %10s %10s\n", "host", "mean", "max", "ovl min", "max streak")
	for _, s := range res.Summaries() {
		fmt.Printf("%-12s %5.0f%% %5.0f%% %10d %10d\n",
			s.Host, s.Mean*100, s.Max*100, s.OverloadMinutes, s.MaxStreak)
	}
	counts := res.ActionCounts()
	if len(counts) > 0 {
		fmt.Println("\nexecuted controller actions:")
		for _, a := range service.Actions() {
			if counts[a] > 0 {
				fmt.Printf("  %-18s %d\n", a, counts[a])
			}
		}
	}
	if res.Restarts+res.FailedRestarts > 0 {
		fmt.Printf("\nself-healing: %d restarts, %d failed\n", res.Restarts, res.FailedRestarts)
	}
	overloaded := res.Overloaded(simulator.DefaultOverloadBudget, simulator.DefaultStreakBudget)
	fmt.Printf("\nverdict: installation %s the load (budget %d min/day, streak %d min)\n",
		map[bool]string{true: "CANNOT handle", false: "handles"}[overloaded],
		simulator.DefaultOverloadBudget, simulator.DefaultStreakBudget)

	if *actions {
		fmt.Println("\naction log:")
		for _, e := range res.Actions {
			switch {
			case e.Executed:
				fmt.Printf("  minute %5d  %s\n", e.Minute, e.Decision)
				if *explain {
					for _, fr := range e.Decision.Explanation {
						fmt.Printf("                 %.2f  %s\n", fr.Truth, fr.Rule)
					}
				}
			case e.Decision != nil:
				fmt.Printf("  minute %5d  %s  (%s)\n", e.Minute, e.Decision, e.Note)
			}
		}
	}
	for _, key := range res.SeriesKeys() {
		pts := res.ServiceHostSeries[key]
		var max float64
		for _, p := range pts {
			if p.Load > max {
				max = p.Load
			}
		}
		fmt.Printf("series %-16s %d samples, max %.0f%%\n", key, len(pts), max*100)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	if *recordCSV != "" {
		if err := writeSeriesCSV(*recordCSV, res); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *recordCSV)
	}
}

// writeSeriesCSV emits the recorded per-(service, host) load curves —
// the data behind Figures 15–17 — as minute, series, load rows.
func writeSeriesCSV(path string, res *simulator.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"minute", "series", "load"}); err != nil {
		return err
	}
	for _, key := range res.SeriesKeys() {
		for _, p := range res.ServiceHostSeries[key] {
			if err := w.Write([]string{
				strconv.Itoa(p.Minute), key, strconv.FormatFloat(p.Load, 'f', 4, 64),
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func parseScenario(s string) (service.Mobility, error) {
	switch strings.ToLower(s) {
	case "static":
		return service.Static, nil
	case "cm", "constrained":
		return service.ConstrainedMobility, nil
	case "fm", "full":
		return service.FullMobility, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want static, cm or fm)", s)
}

// writeCSV emits minute, per-host loads, and the all-host average — the
// data behind Figures 12–14.
func writeCSV(path string, res *simulator.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := append([]string{"minute"}, res.Hosts...)
	header = append(header, "average")
	if err := w.Write(header); err != nil {
		return err
	}
	for m := 0; m < res.Minutes; m++ {
		row := make([]string, 0, len(res.Hosts)+2)
		row = append(row, strconv.Itoa(m))
		for _, h := range res.Hosts {
			series := res.HostLoad[h]
			if m < len(series) {
				row = append(row, strconv.FormatFloat(series[m], 'f', 4, 64))
			} else {
				row = append(row, "") // host left the pool
			}
		}
		row = append(row, strconv.FormatFloat(res.AvgLoad[m], 'f', 4, 64))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoglobe-sim:", err)
	os.Exit(1)
}
