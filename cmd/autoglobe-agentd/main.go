// Command autoglobe-agentd runs AutoGlobe's distributed control plane
// as real processes: a coordinator daemon that ingests heartbeats,
// feeds the monitoring pipeline and dispatches the fuzzy controller's
// actions, and per-host agent daemons that join the landscape, report
// load and execute the actions. All traffic is protocol-version-1 JSON
// over HTTP (see internal/wire).
//
// Usage:
//
//	# coordinator over a declared landscape, on a fixed port
//	autoglobe-agentd -mode coordinator -landscape l.xml -listen 127.0.0.1:7700
//
//	# one agent per host, joining by hello (the agent announces its
//	# own ephemeral URL, so only the coordinator needs a known address)
//	autoglobe-agentd -mode agent -host b1 -coordinator http://127.0.0.1:7700 -load 0.4
//
//	# single-process demo: the whole plane over the in-memory loopback,
//	# driving the simulator's distributed mode for a fast-forward run
//	autoglobe-agentd -mode demo -landscape l.xml -hours 24
//
//	# crash-safe coordinator: every action is write-ahead journaled and
//	# a restart recovers in-flight actions under a fresh epoch
//	autoglobe-agentd -mode coordinator -landscape l.xml -journal /var/lib/autoglobe/journal
//
//	# chaos mode: the demo run under a seeded deterministic fault
//	# schedule (coordinator crashes, duplicated and delayed deliveries,
//	# short partitions), with the journal absorbing every crash
//	autoglobe-agentd -mode demo -landscape l.xml -chaos-seed 11
//
//	# durable load archive + proactive control: heartbeat samples are
//	# written through to a segmented on-disk store (internal/tsdb) and
//	# replayed on restart, and the forecast scan raises triggers 45
//	# minutes ahead of predicted overloads
//	autoglobe-agentd -mode coordinator -landscape l.xml -archive-dir /var/lib/autoglobe/archive -forecast 45
//
//	# administrable rules: seed the versioned rule registry from disk
//	# and shadow-evaluate a candidate base beside the active set —
//	# the candidate's decisions are diffed and counted, never executed
//	autoglobe-agentd -mode coordinator -landscape l.xml -rules-dir /etc/autoglobe/rules \
//	    -shadow-rules-dir /etc/autoglobe/candidate -shadow-label overhaul@v2
//
//	# hot standby: watch a running coordinator's health, warm-replay its
//	# journal from shared storage, and promote on lease expiry — the
//	# promotion bumps the journal epoch, so agents fence any straggling
//	# messages from the deposed incarnation
//	autoglobe-agentd -mode standby -standby-of http://127.0.0.1:7700 \
//	    -landscape l.xml -listen 127.0.0.1:7701 -journal /var/lib/autoglobe/journal
//
//	# failover demo: the single-process plane with two hot standbys and
//	# a seeded fault schedule that repeatedly kills and partitions the
//	# leader — watch autoglobe_election_* in the run's metric dump
//	autoglobe-agentd -mode demo -landscape l.xml -standbys 2 -chaos-seed 11
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"autoglobe/internal/agent"
	"autoglobe/internal/archive"
	"autoglobe/internal/chaos"
	"autoglobe/internal/console"
	"autoglobe/internal/controller"
	"autoglobe/internal/forecast"
	"autoglobe/internal/journal"
	"autoglobe/internal/lease"
	"autoglobe/internal/monitor"
	"autoglobe/internal/obs"
	"autoglobe/internal/rules"
	"autoglobe/internal/simulator"
	"autoglobe/internal/spec"
	"autoglobe/internal/tsdb"
	"autoglobe/internal/wire"
)

func main() {
	var (
		mode        = flag.String("mode", "demo", "coordinator, agent, standby or demo")
		landscape   = flag.String("landscape", "", "declarative XML landscape (coordinator and demo modes)")
		listen      = flag.String("listen", "127.0.0.1:7700", "coordinator listen address")
		coordinator = flag.String("coordinator", "http://127.0.0.1:7700", "coordinator base URL (agent mode)")
		host        = flag.String("host", "", "host name this agent serves (agent mode)")
		load        = flag.Float64("load", 0.30, "synthetic CPU load this agent reports (agent mode)")
		interval    = flag.Duration("interval", 2*time.Second, "wall-clock duration of one control-plane minute")
		hours       = flag.Int("hours", 24, "simulated hours (demo mode)")
		obsAddr     = flag.String("obs", "", "demo mode: keep serving /healthz and /autoglobe/v1/{metrics,traces} on this address after the run (coordinator and agent modes always serve them on their wire listener)")
		journalDir  = flag.String("journal", "", "write-ahead action journal directory (coordinator and demo modes): every action is journaled before dispatch, and a restart recovers in-flight actions under a fresh epoch")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "demo mode: inject the deterministic fault schedule derived from this seed — coordinator crashes, duplicated and delayed deliveries, short partitions (0 disables)")
		codecName   = flag.String("codec", "json", "wire codec for outgoing envelopes: json (compatible default) or binary (length-prefixed zero-alloc frames; the receiving side negotiates by content type, so mixed landscapes interoperate)")
		shards      = flag.Int("ingest-shards", 0, "coordinator/demo modes: heartbeat ingest shard count (0: the built-in default); observation semantics are identical for any count")
		workers     = flag.Int("dispatch-workers", 0, "coordinator/demo modes: action fan-out width — how many per-host dispatch lanes run concurrently (0: one per CPU, 1: serial); outcomes are identical for any width, same-host actions stay ordered")
		archiveDir  = flag.String("archive-dir", "", "coordinator/demo modes: back the load archive with the segmented on-disk store in this directory; the full observation history is committed once per minute and replayed on restart")
		forecastMin = flag.Int("forecast", 0, "coordinator/demo modes: proactive-control horizon in minutes — the forecast scan predicts every host's and service's load this far ahead and raises forecast triggers before measured overloads confirm (0 disables)")
		rulesDir    = flag.String("rules-dir", "", "coordinator/demo modes: versioned rule-base directory (<name>@v<N>.rules); every file is validated into the rule registry and the highest version of each base is hot-swapped into the controller before the first minute")
		shadowDir   = flag.String("shadow-rules-dir", "", "coordinator/demo modes: candidate rule-base directory shadow-evaluated beside the active rule set on every live trigger — decisions are diffed and counted in autoglobe_rules_shadow_* metrics, never executed")
		shadowLabel = flag.String("shadow-label", "candidate", "label the shadow candidate carries in metrics and traces (with -shadow-rules-dir)")
		standbyOf   = flag.String("standby-of", "", "standby mode: base URL of the acting coordinator to watch; when its lease lapses this process promotes itself over the shared -journal directory")
		leaseTTL    = flag.Int("lease-ttl", lease.DefaultTTL, "standby/demo modes: leadership lease time-to-live in intervals — a leader silent this long is presumed dead (co-located standbys should stagger this so a deterministic single winner promotes first)")
		standbys    = flag.Int("standbys", 0, "demo mode: attach this many hot-standby coordinators and run lease-based leader election (chaos seeds then also kill and partition the leader)")
		selWorkers  = flag.Int("selection-workers", 0, "coordinator/demo modes: parallel server-selection width — how many goroutines score candidate hosts per placement decision (0 or 1: serial); selections are byte-identical at any width")
		pprofOn     = flag.Bool("pprof", false, "expose the runtime profiling surface (net/http/pprof) under /debug/pprof/ on the observability listener")
	)
	flag.Parse()

	if err := validateFlags(*mode, *landscape, *host, *load, *interval, *hours, *chaosSeed, *codecName, *shards, *workers, *archiveDir, *forecastMin, *rulesDir, *shadowDir, *standbyOf, *journalDir, *leaseTTL, *standbys, *selWorkers); err != nil {
		fatal(err)
	}
	codec, _ := wire.ParseCodec(*codecName) // validated above
	var err error
	switch *mode {
	case "coordinator":
		err = runCoordinator(*landscape, *listen, *interval, *journalDir, codec, *shards, *workers, *archiveDir, *forecastMin, *rulesDir, *shadowDir, *shadowLabel, *selWorkers, *pprofOn)
	case "agent":
		err = runAgent(*host, *coordinator, *load, *interval, codec, *pprofOn)
	case "standby":
		err = runStandby(*landscape, *listen, *standbyOf, *interval, *journalDir, *leaseTTL, codec, *shards, *workers, *archiveDir, *forecastMin, *rulesDir, *shadowDir, *shadowLabel, *selWorkers, *pprofOn)
	case "demo":
		err = runDemo(*landscape, *hours, *obsAddr, *journalDir, *chaosSeed, codec, *shards, *workers, *archiveDir, *forecastMin, *rulesDir, *shadowDir, *shadowLabel, *standbys, *leaseTTL, *selWorkers, *pprofOn)
	}
	if err != nil {
		fatal(err)
	}
}

// mountObs rides the observability surface on a wire HTTP listener:
// every daemon answers /healthz, /autoglobe/v1/metrics and
// /autoglobe/v1/traces next to the wire endpoint. Must be called
// before the transport starts listening.
func mountObs(tr *wire.HTTP, reg *obs.Registry, tracer *obs.Tracer, health *obs.Health) {
	tr.Mount(obs.MetricsPath, obs.MetricsHandler(reg))
	tr.Mount(obs.TracesPath, obs.TracesHandler(tracer))
	tr.Mount(obs.HealthPath, obs.HealthHandler(health))
}

// mountPprof registers the runtime profiling surface under
// /debug/pprof/ via any mux-style mount function (-pprof): CPU and heap
// profiles of a live daemon, e.g. of the server-selection hot path
// under a trigger storm.
func mountPprof(mount func(path string, h http.Handler)) {
	mount("/debug/pprof/", http.HandlerFunc(pprof.Index))
	mount("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	mount("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	mount("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	mount("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}

func validateFlags(mode, landscape, host string, load float64, interval time.Duration, hours int, chaosSeed uint64, codecName string, shards, workers int, archiveDir string, forecastMin int, rulesDir, shadowDir, standbyOf, journalDir string, leaseTTL, standbys, selWorkers int) error {
	if chaosSeed != 0 && mode != "demo" {
		return fmt.Errorf("-chaos-seed only applies to -mode demo")
	}
	if standbyOf != "" && mode != "standby" {
		return fmt.Errorf("-standby-of only applies to -mode standby")
	}
	if standbys != 0 && mode != "demo" {
		return fmt.Errorf("-standbys only applies to -mode demo")
	}
	if standbys < 0 {
		return fmt.Errorf("-standbys %d must be >= 0", standbys)
	}
	if leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl %d must be positive", leaseTTL)
	}
	if archiveDir != "" && mode == "agent" {
		return fmt.Errorf("-archive-dir only applies to -mode coordinator or demo")
	}
	if rulesDir != "" && mode == "agent" {
		return fmt.Errorf("-rules-dir only applies to -mode coordinator or demo")
	}
	if shadowDir != "" && mode == "agent" {
		return fmt.Errorf("-shadow-rules-dir only applies to -mode coordinator or demo")
	}
	if forecastMin < 0 {
		return fmt.Errorf("-forecast %d must be >= 0", forecastMin)
	}
	if forecastMin > 0 && mode == "agent" {
		return fmt.Errorf("-forecast only applies to -mode coordinator or demo")
	}
	if _, err := wire.ParseCodec(codecName); err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	if shards < 0 {
		return fmt.Errorf("-ingest-shards %d must be >= 0", shards)
	}
	if shards > 0 && mode == "agent" {
		return fmt.Errorf("-ingest-shards only applies to -mode coordinator or demo")
	}
	if workers < 0 {
		return fmt.Errorf("-dispatch-workers %d must be >= 0", workers)
	}
	if workers > 0 && mode == "agent" {
		return fmt.Errorf("-dispatch-workers only applies to -mode coordinator or demo")
	}
	if selWorkers < 0 {
		return fmt.Errorf("-selection-workers %d must be >= 0", selWorkers)
	}
	if selWorkers > 0 && mode == "agent" {
		return fmt.Errorf("-selection-workers only applies to -mode coordinator or demo")
	}
	switch mode {
	case "coordinator", "demo":
		if landscape == "" {
			return fmt.Errorf("-mode %s needs -landscape", mode)
		}
	case "standby":
		if landscape == "" {
			return fmt.Errorf("-mode standby needs -landscape")
		}
		if standbyOf == "" {
			return fmt.Errorf("-mode standby needs -standby-of (the acting coordinator's base URL)")
		}
		if journalDir == "" {
			return fmt.Errorf("-mode standby needs -journal (the leader's journal directory on shared storage)")
		}
	case "agent":
		if host == "" {
			return fmt.Errorf("-mode agent needs -host")
		}
	default:
		return fmt.Errorf("unknown -mode %q (coordinator, agent, standby or demo)", mode)
	}
	if load < 0 || load > 1 {
		return fmt.Errorf("-load %g outside [0, 1]", load)
	}
	if interval <= 0 {
		return fmt.Errorf("-interval %v must be positive", interval)
	}
	if mode == "demo" && hours <= 0 {
		return fmt.Errorf("-hours %d must be positive", hours)
	}
	return nil
}

func loadLandscape(path string) (*spec.Landscape, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spec.Parse(f)
}

// runCoordinator is the central autonomic manager as a daemon: it
// listens for hellos and heartbeats, advances one control-plane minute
// per interval (closing the service observations, probing silent
// hosts), and hands every confirmed trigger to the fuzzy controller,
// whose decisions are dispatched back to the agents.
func runCoordinator(landscapePath, listenAddr string, interval time.Duration, journalDir string, codec wire.Codec, shards, workers int, archiveDir string, forecastMin int, rulesDir, shadowDir, shadowLabel string, selWorkers int, pprofOn bool) error {
	l, err := loadLandscape(landscapePath)
	if err != nil {
		return err
	}
	dep, err := l.BuildDeployment()
	if err != nil {
		return err
	}
	tr := wire.NewHTTP()
	tr.DefaultListenAddr = listenAddr
	tr.Codec = codec
	defer tr.Close()

	// The full observability surface rides on the coordinator's wire
	// listener: metrics from every layer, the decision trace ring, and a
	// health report wired to the ingest error state.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	health := obs.NewHealth()
	health.SetInfo("mode", "coordinator")
	tr.Instrument(reg)
	mountObs(tr, reg, tracer, health)
	if pprofOn {
		mountPprof(tr.Mount)
	}

	params := monitor.PaperParams()
	// A backed archive makes the observation history durable: every
	// heartbeat sample is written through to the segmented store,
	// committed once per control-plane minute, and the next incarnation
	// replays it — the forecaster's day profiles survive restarts.
	var arch *archive.Archive
	startMinute := 0
	if archiveDir != "" {
		arch, err = archive.NewBacked(archiveDir, 0, tsdb.Options{})
		if err != nil {
			return err
		}
		defer arch.Close()
		// The store's append rule is monotone per entity: a restarted
		// coordinator resumes its minute clock past the restored
		// history instead of replaying minute 0 over it.
		if last, ok := arch.LastMinute(); ok {
			startMinute = last + 1
		}
		fmt.Printf("archive: %s, %d entities restored, resuming at minute %d\n",
			archiveDir, len(arch.Entities()), startMinute)
	}
	lms, err := monitor.NewSystem(params, arch)
	if err != nil {
		return err
	}
	lms.Instrument(reg)
	lms.Archive().Instrument(reg)
	coord, err := agent.NewCoordinator("", dep, lms, tr, nil)
	if err != nil {
		return err
	}
	if shards > 0 {
		coord.Reshard(shards)
	}
	health.SetInfo("codec", codec.String())
	health.SetInfo("ingest_shards", fmt.Sprintf("%d", coord.Shards()))
	coord.Instrument(reg)
	coord.Liveness().Instrument(reg)
	coord.OnHello = func(h wire.Hello) error {
		if h.Addr != "" {
			tr.Register(h.Host, h.Addr)
		}
		fmt.Printf("join: %s (PI %g, %d MB) at %s\n", h.Host, h.PerformanceIndex, h.MemoryMB, h.Addr)
		return nil
	}
	disp := agent.NewDispatcher(agent.DispatchConfig{From: coord.Node(), Workers: workers}, tr)
	disp.Instrument(reg)
	disp.Trace(tracer)
	health.SetInfo("dispatch_workers", fmt.Sprintf("%d", disp.Workers()))
	var cj *agent.CoordinatorJournal
	if journalDir != "" {
		// Crash safety: fsync-on-commit journal, a fresh durable epoch per
		// incarnation, and recovery of the previous incarnation's
		// in-flight actions (answered from agent idempotency caches if
		// they already applied; rejected on route errors until the agents
		// rejoin, which journals the abandonment for the controller to
		// re-plan).
		cj, err = agent.OpenCoordinatorJournal(journalDir, journal.Options{})
		if err != nil {
			return err
		}
		defer cj.Close()
		cj.Instrument(reg)
		disp.AttachJournal(cj)
		coord.AttachJournal(cj)
		for h, m := range cj.Down() {
			coord.Liveness().MarkDead(h, m)
		}
		if downs := cj.DownHosts(); len(downs) > 0 {
			fmt.Printf("journal: hosts %v restored as down\n", downs)
		}
		reissued, rerr := cj.Recover(context.Background(), disp)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "journal recovery: %v\n", rerr)
		}
		fmt.Printf("journal: %s at epoch %d, %d in-flight actions re-issued\n",
			journalDir, cj.Epoch(), reissued)
		health.SetInfo("epoch", fmt.Sprintf("%d", cj.Epoch()))
	}
	exec := agent.NewDispatchExecutor(dep,
		controller.NewDeploymentExecutor(dep, controller.StickyUsers), disp)
	ctlCfg := controller.Config{SelectionWorkers: selWorkers}
	if forecastMin > 0 {
		ctlCfg.Forecast = &controller.ForecastConfig{
			Predictor: forecast.New(lms.Archive()),
			Horizon:   forecastMin,
			Threshold: params.OverloadThreshold,
			Watching:  lms.Watching,
		}
		fmt.Printf("forecast: proactive scan %d minutes ahead\n", forecastMin)
	}
	ctl, err := controller.New(ctlCfg, dep, lms.Archive(), exec)
	if err != nil {
		return err
	}
	ctl.Instrument(reg)
	ctl.Trace(tracer)
	// Rule administration: a versioned registry backs the coordinator's
	// rulePut/ruleGet/ruleList endpoints, -rules-dir seeds it from disk,
	// and journaled activations from the previous incarnation are
	// re-validated, re-swapped and re-activated before the first minute.
	rreg := rules.New(controller.RuleVocabulary)
	ruleSwap := func(e *rules.Entry) error { return ctl.SwapRuleBase(e.Name, e.Base) }
	if rulesDir != "" {
		refs, err := agent.LoadRuleDir(rreg, ctl, rulesDir)
		if err != nil {
			return err
		}
		fmt.Printf("rules: %d versions loaded from %s\n", len(refs), rulesDir)
	}
	coord.AttachRules(rreg, ruleSwap)
	if cj != nil {
		if err := agent.ReplayRules(cj, rreg, ruleSwap); err != nil {
			return err
		}
		if n := len(cj.ActiveRules()); n > 0 {
			fmt.Printf("journal: %d rule activations restored\n", n)
		}
	}
	if shadowDir != "" {
		// The candidate rides along every live trigger: its decisions are
		// diffed against the active rule set's and counted, never executed.
		am, sm, err := agent.ShadowOverlayDir(shadowDir)
		if err != nil {
			return err
		}
		ctl.Shadow(shadowLabel, am, sm)
		fmt.Printf("shadow: candidate %q from %s evaluated alongside the active rules\n", shadowLabel, shadowDir)
	}
	health.SetInfo("node", coord.Node())
	// Coordinator.Err drains on read, so the minute loop records the
	// drained value here and the health check reports it until the next
	// minute overwrites it.
	var ingestMu sync.Mutex
	var ingestErr error
	setIngest := func(err error) {
		ingestMu.Lock()
		ingestErr = err
		ingestMu.Unlock()
	}
	health.Register("ingest", func() error {
		ingestMu.Lock()
		defer ingestMu.Unlock()
		return ingestErr
	})

	base, _ := tr.Addr(coord.Node())
	fmt.Printf("coordinator listening on %s (%s), one minute every %v\n", listenAddr, base, interval)
	fmt.Printf("observability: %s%s, %s%s, %s%s\n", base, obs.HealthPath, base, obs.MetricsPath, base, obs.TracesPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	events := 0
	for minute := startMinute; ; minute++ {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
		}
		ingest := coord.Err()
		setIngest(ingest)
		if ingest != nil {
			fmt.Fprintf(os.Stderr, "ingest: %v\n", ingest)
		}
		if err := coord.ObserveServices(minute); err != nil {
			return err
		}
		dead, recovered := coord.CheckLiveness(ctx, minute)
		for _, h := range dead {
			fmt.Printf("minute %d: host %s confirmed dead\n", minute, h)
		}
		for _, h := range recovered {
			fmt.Printf("minute %d: host %s recovered\n", minute, h)
		}
		for _, tg := range coord.TakeTriggers() {
			if _, err := ctl.HandleTrigger(*tg); err != nil {
				fmt.Fprintf(os.Stderr, "trigger %s(%s): %v\n", tg.Kind, tg.Entity, err)
			}
		}
		for _, tg := range ctl.Proactive(minute) {
			if _, err := ctl.HandleTrigger(tg); err != nil {
				fmt.Fprintf(os.Stderr, "forecast trigger %s(%s): %v\n", tg.Kind, tg.Entity, err)
			}
		}
		// Seal the minute in the backed archive (group commit +
		// downsampling); a no-op for the in-memory archive.
		if err := lms.Archive().Maintain(minute); err != nil {
			fmt.Fprintf(os.Stderr, "archive maintain: %v\n", err)
		}
		for _, e := range ctl.Events()[events:] {
			fmt.Printf("minute %d: %s\n", minute, renderEvent(e))
			events++
		}
		st := disp.Stats()
		fmt.Printf("minute %d: %d heartbeats, %d actions (%d retries, %d nacks)\n",
			minute, coord.Heartbeats(), st.Actions, st.Retries, st.Nacks)
	}
}

func renderEvent(e controller.Event) string {
	if e.Decision != nil {
		return fmt.Sprintf("%s [executed=%v] %s", e.Decision, e.Executed, e.Note)
	}
	return e.Note
}

// runAgent is the per-host daemon: it binds an ephemeral port, joins
// the landscape by hello (announcing its own URL, so only the
// coordinator needs a well-known address), and then reports a heartbeat
// per interval with the configured synthetic load spread over whatever
// instances the coordinator has started here.
func runAgent(host, coordinatorURL string, load float64, interval time.Duration, codec wire.Codec, pprofOn bool) error {
	tr := wire.NewHTTP()
	tr.Codec = codec
	defer tr.Close()
	// The agent serves the same observability surface as the
	// coordinator on its own listener: wire-call metrics plus a health
	// report naming the host (no tracer — traces are controller-side).
	reg := obs.NewRegistry()
	health := obs.NewHealth()
	health.SetInfo("mode", "agent")
	health.SetInfo("host", host)
	tr.Instrument(reg)
	mountObs(tr, reg, nil, health)
	if pprofOn {
		mountPprof(tr.Mount)
	}
	tr.Register(agent.CoordinatorNode, coordinatorURL)
	a, err := agent.NewAgent(host, agent.CoordinatorNode, tr)
	if err != nil {
		return err
	}
	base, _ := tr.Addr(host)
	fmt.Printf("observability: %s%s, %s%s\n", base, obs.HealthPath, base, obs.MetricsPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Joining retries forever with a capped exponential backoff: an agent
	// started before its coordinator — or re-pointed at a standby that is
	// still promoting — keeps knocking, quickly at first, then settles at
	// the cap instead of hammering a recovering leader.
	hello := wire.Hello{Host: host, Addr: base}
	backoff := interval / 4
	if backoff <= 0 {
		backoff = interval
	}
	maxBackoff := 8 * interval
	for {
		err := a.SendHello(ctx, hello)
		if err == nil {
			break
		}
		fmt.Fprintf(os.Stderr, "hello: %v (retrying in %v)\n", err, backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	fmt.Printf("agent %s at %s joined %s, heartbeat every %v\n", host, base, coordinatorURL, interval)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	rep := a.Reporter()
	// A transiently lost heartbeat is redelivered within the interval
	// (two quick retries), and an outage that outlives the retries parks
	// the minute in the reporter's ring for the next successful send —
	// the coordinator's day profiles stay gap-free across a failover.
	rep.SetRetry(2, interval/16, nil)
	var ids []string
	for minute := 0; ; minute++ {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
		}
		// The reporter coalesces the minute's instance samples into one
		// reusable envelope (agent.HeartbeatReporter): the steady-state
		// heartbeat costs no allocations beyond the process-table
		// snapshot.
		rep.Begin(minute, load, 0)
		procs := a.Instances()
		ids = ids[:0]
		for id := range procs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			rep.Sample(id, procs[id], load/float64(len(ids)))
		}
		if err := rep.Send(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "heartbeat %d: %v\n", minute, err)
		}
	}
}

// runStandby is the hot-standby coordinator daemon: it checks the
// acting leader's health endpoint once per interval, warm-replays the
// leader's journal from shared storage so its view of the in-flight
// actions stays current, and — when the leader has been unreachable
// for the lease TTL — promotes itself by running the full coordinator
// over the same journal directory. The promotion reopens the journal
// under a bumped epoch, so the agents' epoch guard fences any
// straggling messages from the deposed incarnation; safety rests on
// that fencing, the lease only decides when to move. The standby's
// -listen address should sit behind the shared coordinator address
// (VIP or DNS) so the agents' hello retry reconnects them, and
// co-located standbys should stagger -lease-ttl so exactly one
// promotes first.
func runStandby(landscapePath, listenAddr, leaderURL string, interval time.Duration, journalDir string, ttl int, codec wire.Codec, shards, workers int, archiveDir string, forecastMin int, rulesDir, shadowDir, shadowLabel string, selWorkers int, pprofOn bool) error {
	tracker := lease.NewTracker(ttl)
	client := &http.Client{Timeout: interval / 2}
	healthURL := leaderURL + obs.HealthPath
	check := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, healthURL, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("leader unhealthy: %s", resp.Status)
		}
		return nil
	}

	fmt.Printf("standby: watching %s, lease TTL %d intervals of %v, journal %s\n",
		leaderURL, tracker.TTL(), interval, journalDir)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var lastEpoch uint64
	lastPending := -1
	for tick := 0; ; tick++ {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
		}
		if err := check(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "standby: leader check: %v\n", err)
		} else {
			tracker.Renew(tick, 0)
		}
		// Follow the leader's durable state between checks: the replay is
		// read-only and torn-tail tolerant, so it is safe against a leader
		// that is still appending.
		if ls, err := agent.WarmReplay(journalDir); err != nil {
			fmt.Fprintf(os.Stderr, "standby: warm replay: %v\n", err)
		} else if ls.Epoch != lastEpoch || len(ls.Pending) != lastPending {
			fmt.Printf("standby: following epoch %d, %d in-flight actions, %d hosts down\n",
				ls.Epoch, len(ls.Pending), len(ls.Down))
			lastEpoch, lastPending = ls.Epoch, len(ls.Pending)
		}
		if !tracker.Expired(tick) {
			continue
		}
		stop() // release the signal context; the coordinator installs its own
		fmt.Printf("standby: lease expired after %d silent intervals — promoting over %s\n",
			tracker.TTL(), journalDir)
		return runCoordinator(landscapePath, listenAddr, interval, journalDir, codec, shards, workers, archiveDir, forecastMin, rulesDir, shadowDir, shadowLabel, selWorkers, pprofOn)
	}
}

// runDemo fast-forwards the whole distributed plane in one process: the
// declared landscape runs through the simulator's distributed mode over
// the in-memory loopback, and the run ends with the control-plane panel
// and the usual result summary.
func runDemo(landscapePath string, hours int, obsAddr, journalDir string, chaosSeed uint64, codec wire.Codec, shards, workers int, archiveDir string, forecastMin int, rulesDir, shadowDir, shadowLabel string, standbys, leaseTTL, selWorkers int, pprofOn bool) error {
	l, err := loadLandscape(landscapePath)
	if err != nil {
		return err
	}
	tr := wire.NewLoopback()
	tr.SetCodec(codec)
	defer tr.Close()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	jdir := journalDir
	if (chaosSeed != 0 || standbys > 0) && jdir == "" {
		// Crash injections need a journal to recover from (an unjournaled
		// chaos run would die at the first crash), and standby
		// coordinators warm-replay the leader's journal directory.
		tmp, err := os.MkdirTemp("", "autoglobe-journal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		jdir = tmp
	}
	var drv *chaos.Driver
	sim, err := simulator.FromLandscapeConfig(l, func(c *simulator.Config) {
		c.Hours = hours
		c.ArchiveDir = archiveDir
		c.ForecastHorizon = forecastMin
		c.Controller.SelectionWorkers = selWorkers
		c.RulesDir = rulesDir
		c.ShadowRulesDir = shadowDir
		c.ShadowLabel = shadowLabel
		dc := &simulator.DistributedConfig{Transport: tr, JournalDir: jdir, IngestShards: shards, DispatchWorkers: workers, Standbys: standbys, LeaseTTL: leaseTTL}
		if chaosSeed != 0 {
			hosts := make([]string, 0, len(l.Servers))
			for _, s := range l.Servers {
				hosts = append(hosts, s.Name)
			}
			drv = chaos.NewDriver(chaos.NewPlan(chaosSeed, hours*60, hosts, chaos.DefaultProfile()), tr)
			drv.Instrument(reg)
			dc.Chaos = drv
		}
		c.Distributed = dc
		c.Obs = reg
		c.Tracer = tracer
	})
	if err != nil {
		return err
	}
	if drv != nil {
		drv.Crash = func() error {
			_, err := sim.Plane().CrashCoordinator(context.Background())
			return err
		}
		if e := sim.Plane().Election(); e != nil {
			// With standbys attached, crash injections become leader kills:
			// a standby promotes after the lease TTL instead of the same
			// incarnation restarting in place.
			drv.Crash = nil
			drv.KillLeader = func(step int) (bool, error) { return e.KillLeader(step) }
			drv.Leader = e.LeaderNode
		}
		fmt.Printf("chaos: seed %d schedules %d injections over %d minutes\n",
			chaosSeed, drv.Remaining(), hours*60)
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	// Seal the backed archive cleanly; a no-op without -archive-dir.
	defer sim.Close()
	if drv != nil {
		fmt.Printf("chaos: applied %v\n", drv.Stats())
		if cj := sim.Plane().Dispatcher().Journal(); cj != nil {
			fmt.Printf("journal: final epoch %d (initial open + one per crash or takeover)\n", cj.Epoch())
		}
		if err := sim.CheckInvariants(true); err != nil {
			return fmt.Errorf("post-chaos invariant check: %w", err)
		}
		fmt.Println("invariants: landscape constraints hold after the fault schedule")
	}
	if e := sim.Plane().Election(); e != nil {
		fmt.Printf("election: leader %s, %d takeovers, %d fenced depositions\n",
			e.LeaderNode(), e.Takeovers(), e.FencedDepositions())
	}
	fmt.Println(console.PlaneView(sim.Deployment(), sim.Plane()))
	fmt.Println()
	fmt.Println(console.ServerView(sim.Deployment(), sim.Archive()))
	fmt.Println()
	fmt.Println(console.ObsView(reg, tracer, 10))
	fmt.Println()
	fmt.Println(res)
	if res.DemotedHosts > 0 || res.RepooledHosts > 0 {
		fmt.Printf("demoted %d hosts, re-pooled %d\n", res.DemotedHosts, res.RepooledHosts)
	}
	if obsAddr == "" {
		return nil
	}
	// -obs keeps the finished run inspectable: the metrics, traces and
	// health of the fast-forwarded plane stay scrapeable until
	// interrupted.
	health := obs.NewHealth()
	health.SetInfo("mode", "demo")
	mux := obs.Handler(reg, tracer, health)
	if pprofOn {
		mountPprof(func(p string, h http.Handler) { mux.Handle(p, h) })
	}
	srv := &http.Server{
		Addr:              obsAddr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	ln, err := net.Listen("tcp", obsAddr)
	if err != nil {
		return err
	}
	fmt.Printf("serving observability on http://%s (%s, %s, %s) — ^C to stop\n",
		ln.Addr(), obs.HealthPath, obs.MetricsPath, obs.TracesPath)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoglobe-agentd:", err)
	os.Exit(1)
}
