// Command loadgen emits the simulation's workload curves — the data
// behind Figure 10 — as CSV, one row per simulated minute.
//
// Usage:
//
//	loadgen                          # all paper services, one day
//	loadgen -services LES,BW -days 2
//	loadgen -multiplier 1.15 -users  # absolute active users instead of fractions
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autoglobe/internal/workload"
)

func main() {
	var (
		services   = flag.String("services", "FI,LES,PP,HR,CRM,BW", "comma-separated services")
		days       = flag.Int("days", 1, "days to emit")
		multiplier = flag.Float64("multiplier", 1.0, "user population multiplier")
		users      = flag.Bool("users", false, "emit absolute active users (with noise) instead of activity fractions")
		seed       = flag.Uint64("seed", 1, "noise seed (with -users)")
		step       = flag.Int("step", 1, "minutes per row")
	)
	flag.Parse()
	names := strings.Split(*services, ",")
	gen := workload.PaperGenerator(*multiplier, *seed)

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := append([]string{"minute"}, names...)
	if err := w.Write(header); err != nil {
		fatal(err)
	}
	for m := 0; m < *days*workload.MinutesPerDay; m += *step {
		row := []string{strconv.Itoa(m)}
		for _, svc := range names {
			var v float64
			if *users {
				v = gen.ActiveUsers(svc, m)
			} else {
				v = gen.ActiveFraction(svc, m)
			}
			row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
