#!/bin/sh
# scripts/check.sh — the tier-1 gate (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l          over the tree — unformatted files fail the gate
#   2. go vet            over every package
#   3. go build          over every package
#   4. go test -race     the full suite under the race detector
#      (exercises the parallel sweep engine, the shared compiled rule
#      bases, the simulator-isolation tests and the control-plane
#      transports concurrently)
#   5. the observability gate: a dedicated race-enabled run of
#      internal/obs (including the Prometheus exposition golden test)
#      plus a lint that every declared metric family keeps the
#      autoglobe_ namespace and a conventional unit suffix
#   6. the robustness gate: a race-enabled chaos smoke (the fixed-seed
#      full-day convergence run plus both journal crash-point sweeps —
#      single-record and group-committed batch appends) and the
#      journal fuzz targets replayed over their checked-in seed
#      corpus — a decoder regression against a known-bad frame
#      (torn tail, bit flip, lying length) fails the gate even when
#      no new fuzzing is run
#   7. the archive gate: race-enabled tsdb crash-point sweeps (every
#      torn-tail byte boundary across data, dictionary and compaction
#      records), the tsdb record-decoder fuzz seeds, and the
#      simulator-level backed-run recovery test (a full day's day
#      profiles must come back byte-identical after crash-and-reopen)
#   8. the dispatch gate: a race-enabled run of the concurrent fan-out
#      stress (per-host lanes under injected faults and competing
#      callers) and the worker-count byte-identity proof — the claim
#      that DispatchConfig.Workers is purely a throughput knob
#   9. the rules gate: race-enabled runs of the versioned rule
#      registry, the controller's hot-swap and shadow-evaluation
#      tests (swap under concurrent inference, perturbed-candidate
#      diffing) and the coordinator rule-push/journal-recovery tests,
#      plus the rule-parser fuzz target replayed over its seed corpus
#      (the multi-line grammar — newlines inside parenthesized groups —
#      and the String→Parse round trip the registry depends on); the
#      zero-alloc guard proving inference stays 0 allocs/op after a
#      hot swap runs race-free in the perf gate below
#  10. the HA gate: race-enabled runs of the coordinator failover
#      machinery — the lease tracker, the in-process election tests
#      (lease-expiry takeover, isolated-leader fencing), the
#      leader-death crash-point sweep (WarmReplay + Takeover at every
#      journal byte boundary), the agent-side graceful-degradation
#      tests (bounded heartbeat ring, bounded send retry), and the
#      full-day failover acceptance run (≥3 seeded leader kills plus a
#      split-brain drill must converge byte-identically to the
#      fault-free landscape, one epoch bump per takeover, gap-free day
#      profiles); the wire fuzz seed corpus replayed in the robustness
#      gate above already covers the lease/leaseAck envelopes
#  11. the selection gate: race-enabled byte-identity proofs for the
#      server-selection access paths — the placement index vs the
#      full-cluster scan (including the 10k-step randomized mutation
#      property test) and parallel candidate scoring at 1 and 8
#      workers — the claim that the index and SelectionWorkers are
#      pure access-path/throughput knobs that never change a decision
#  12. the perf gate: the wire fuzz target replayed over its
#      checked-in seed corpus (hostile frames must keep failing
#      cleanly), the zero-allocation guardrails on the steady-state
#      heartbeat AND dispatch paths plus the archive append and
#      forecast read paths (race-free runs, because race
#      instrumentation allocates inside sync.Pool), and short smoke
#      runs of the inference fast-path, 1,000-host ingest,
#      single-action dispatch, 1,000-host fan-out, 1,000-host server
#      selection and tsdb append/hot-read benchmarks, so a regression
#      that breaks the compiled path, the pooled codec, the sharded
#      merge, the pooled dispatch path, the indexed selection path or
#      the pooled segment buffers shows up even when no test asserts
#      on speed
#
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal ./*.go)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== observability gate: vet + race tests + exposition golden"
go vet ./internal/obs/...
go test -race ./internal/obs/...

# Metric-name lint: every metric family declared as a Metric* constant
# must live in the autoglobe_ namespace and end in a conventional unit
# suffix (or the state-gauge suffix "role"), so the exposition stays
# scrapeable and greppable.
bad=$(grep -rhoE 'Metric[A-Za-z]+ += +"[^"]*"' internal --include='metrics.go' |
	grep -vE '= +"autoglobe_[a-z_]+_(total|seconds|minutes|role)"' || true)
if [ -n "$bad" ]; then
	echo "metric-name lint: families outside the naming convention:" >&2
	echo "$bad" >&2
	exit 1
fi

echo "== robustness gate: chaos smoke + journal fuzz seed corpus"
# The fixed-seed chaos convergence run and the journal crash-point
# sweeps are the acceptance tests of the crash-safety work: a full
# simulated day under fault injection must converge to the fault-free
# landscape, and a coordinator killed at every journal-record boundary
# — including every frame boundary INSIDE a group-committed batch
# append — must neither duplicate nor lose an action. (The
# TestCrashPointSweep prefix matches both the single-record and the
# group-commit sweep.)
go test -race -run 'TestChaosConvergesToFaultFreeLandscape' ./internal/simulator/
go test -race -run 'TestCrashPointSweep' ./internal/agent/
# Replay the fuzz targets over their checked-in seed corpus (plain
# `go test` runs every seed as a unit case — no -fuzz, no randomness).
go test -race -run 'Fuzz' ./internal/journal/
go test -race -run 'Fuzz' ./internal/wire/

echo "== archive gate: tsdb crash sweeps + fuzz seed corpus + backed-run recovery"
# The disk-backed load archive's acceptance tests: a store killed at
# every byte boundary of a torn tail (data, dictionary and compaction
# watermark records alike) must recover every committed sample and
# never a torn one; the record decoder replayed over its checked-in
# seed corpus must keep rejecting hostile frames cleanly; and a full
# simulated day driven through the real control loop must come back
# byte-identical (same day profiles) after a crash-and-reopen.
go test -race -run 'TestCrashPointSweepTSDB|TestCrashPointSweepDict|TestCrashPointSweepCompaction' ./internal/tsdb/
go test -race -run 'Fuzz' ./internal/tsdb/
go test -race -run 'TestArchiveBackedRunSurvivesCrash' ./internal/simulator/

echo "== dispatch gate: race-enabled fan-out stress + worker parity"
# The concurrent fan-out stress hammers the per-host lanes with
# injected faults and competing callers under the race detector; the
# byte-identity test proves a landscape driven through 1 and through 8
# dispatch workers produces the identical run — Workers is purely a
# throughput knob.
go test -race -run 'TestDoBatchFanoutStress|TestDoBatchPerHostOrdering|TestGroupCommitCoalesces' ./internal/agent/
go test -race -run 'TestDispatchWorkersByteIdentical' ./internal/simulator/

echo "== rules gate: registry + hot-swap/shadow + push recovery + parser fuzz seeds"
# Rule bases are administrable data: the versioned registry, the
# controller's atomic hot-swap point (including a swap racing live
# inference) and shadow evaluation, and the coordinator's
# validate-before-activate push path with journal-logged activations
# all run under the race detector; the parser fuzz seeds pin the
# multi-line grammar and the String→Parse round trip stored sources
# rely on.
go test -race ./internal/rules/
go test -race -run 'TestSwap|TestShadow|TestSelectHostFallback|TestSelectActionsUnknownServiceError' ./internal/controller/
go test -race -run 'TestCoordinatorRule|TestRuleActivationSurvivesRestart' ./internal/agent/
go test -race -run 'TestHotSwapIdenticalBaseMidRunByteIdentical|TestShadowRulesDiffOnSimulatedDay|TestRulesDirActivatesOnStartup' ./internal/simulator/
go test -race -run 'Fuzz' ./internal/fuzzy/

echo "== HA gate: election failover + leader-death crash sweep + full-day convergence"
# The coordinator high-availability acceptance tests, all
# race-enabled: the minute-clock lease tracker; the in-process
# election (lease-expiry takeover with redirect-and-drain, and the
# split-brain drill where a deposed-but-alive leader must be fenced by
# the agents' epoch NACKs and step down); the leader-death crash-point
# sweep proving WarmReplay + Takeover at EVERY byte boundary of the
# dead leader's journal neither duplicates nor loses an action; the
# agent-side graceful-degradation tests (the bounded heartbeat ring
# buffers unsent minutes and drains them oldest-first to the
# successor, the bounded send retry gives up instead of blocking the
# minute loop); and the full-day failover run — ≥3 seeded leader
# kills plus an isolation drill must converge byte-identically to the
# fault-free landscape with one epoch bump per takeover and exactly
# one archived observation per host-minute.
go test -race ./internal/lease/
go test -race -run 'TestElectionFailover|TestElectionIsolatedLeaderFenced|TestLeaderDeathCrashPointSweep|TestReporterBuffersAndDrains|TestReporterBoundedRetry' ./internal/agent/
go test -race -run 'TestFailoverConvergesToFaultFreeLandscape' ./internal/simulator/

echo "== selection gate: index/worker byte-identity + randomized index parity"
# Server selection at scale is an access-path optimization, never a
# behavior change: a paper day decided through the placement index and
# through the full-cluster scan, and with 1 vs 8 scoring workers, must
# be byte-identical runs; the randomized property test drives the
# incremental index through 10k mutation/protection steps against the
# full-scan reference; and the controller-level sweep compares all
# three access paths under random landscape churn.
go test -race -run 'TestSelectionWorkersByteIdentical|TestPlacementIndexByteIdentical' ./internal/simulator/
go test -race -run 'TestIndexMatchesScanRandomized' ./internal/placement/
go test -race -run 'TestSelectHostParityAcrossConfigs|TestSelectActionsTieBreakPinned' ./internal/controller/

echo "== go test -race ./..."
go test -race ./...

echo "== perf gate: zero-alloc heartbeat + dispatch paths (race-free run)"
# The steady-state heartbeat path — reporter batching, binary frame
# codec, loopback delivery, coordinator shard buffering, pooled ack —
# and the steady-state dispatch path — recycled idempotency key,
# pooled envelope and attempt context, bounded agent ack cache and
# audit ring — must allocate nothing. The tests skip themselves under
# -race (race instrumentation allocates inside sync.Pool), so they get
# a dedicated race-free invocation here.
go test -run 'TestHeartbeatPathZeroAlloc|TestDispatchPathZeroAlloc|TestTriggerQueueRecycling' -count=1 ./internal/agent/
# The inference fast path must stay 0 allocs/op even after a rule-base
# hot swap — the swap is a pointer store, never a de-optimization —
# and the steady-state server-selection path (indexed candidate
# enumeration, bound input vectors, pooled inference, argmax) must
# allocate nothing end to end.
go test -run 'TestInferZeroAllocAfterSwap|TestSelectionPathZeroAlloc' -count=1 ./internal/controller/
go test -run 'TestInferVecAllocs' -count=1 ./internal/fuzzy/
# The archive's steady-state write path — ring append, incremental day
# profile, tsdb block write into pooled segment buffers — and the
# forecaster's read path must also allocate nothing per sample.
go test -run 'TestTSDBAppendPathZeroAlloc' -count=1 ./internal/tsdb/
go test -run 'TestArchiveRecordPathZeroAlloc' -count=1 ./internal/archive/
go test -run 'TestPredictZeroAlloc' -count=1 ./internal/forecast/

echo "== benchmark smoke: TSDBAppend + TSDBReadHot (archive hot paths)"
go test -run XXX -bench 'BenchmarkTSDBAppend$|BenchmarkTSDBReadHot$' -benchtime=100x -benchmem ./internal/tsdb/

echo "== benchmark smoke: FuzzyInference (100 iterations)"
go test -run XXX -bench 'BenchmarkFuzzyInference$' -benchtime=100x -benchmem .

echo "== benchmark smoke: CoordinatorIngest1k (one 1,000-host minute)"
go test -run XXX -bench 'BenchmarkCoordinatorIngest1k$' -benchtime=1x -benchmem .

echo "== benchmark smoke: ActionDispatchLoopback (1,000 dispatches)"
go test -run XXX -bench 'BenchmarkActionDispatchLoopback$' -benchtime=1000x -benchmem .

echo "== benchmark smoke: DispatchFanout1k (one 1,000-host storm per width)"
go test -run XXX -bench 'BenchmarkDispatchFanout1k' -benchtime=1x -benchmem .

echo "== benchmark smoke: SelectHost1k (1,000-host server selection per access path)"
go test -run XXX -bench 'BenchmarkSelectHost1k$' -benchtime=5x -benchmem .

echo "check.sh: all gates passed"
