#!/bin/sh
# scripts/check.sh — the tier-1 gate (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l          over the tree — unformatted files fail the gate
#   2. go vet            over every package
#   3. go build          over every package
#   4. go test -race     the full suite under the race detector
#      (exercises the parallel sweep engine, the shared compiled rule
#      bases, the simulator-isolation tests and the control-plane
#      transports concurrently)
#   5. a short smoke run of the inference fast-path benchmark, so a
#      regression that breaks the compiled path or its pooling shows up
#      even when no test asserts on speed
#
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal ./*.go)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== benchmark smoke: FuzzyInference (100 iterations)"
go test -run XXX -bench 'BenchmarkFuzzyInference$' -benchtime=100x -benchmem .

echo "check.sh: all gates passed"
