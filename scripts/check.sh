#!/bin/sh
# scripts/check.sh — the tier-1 gate (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l          over the tree — unformatted files fail the gate
#   2. go vet            over every package
#   3. go build          over every package
#   4. go test -race     the full suite under the race detector
#      (exercises the parallel sweep engine, the shared compiled rule
#      bases, the simulator-isolation tests and the control-plane
#      transports concurrently)
#   5. the observability gate: a dedicated race-enabled run of
#      internal/obs (including the Prometheus exposition golden test)
#      plus a lint that every declared metric family keeps the
#      autoglobe_ namespace and a conventional unit suffix
#   6. the robustness gate: a race-enabled chaos smoke (the fixed-seed
#      full-day convergence run plus the journal crash-point sweep)
#      and the journal fuzz targets replayed over their checked-in
#      seed corpus — a decoder regression against a known-bad frame
#      (torn tail, bit flip, lying length) fails the gate even when
#      no new fuzzing is run
#   7. the perf gate: the wire fuzz target replayed over its
#      checked-in seed corpus (hostile frames must keep failing
#      cleanly), the zero-allocation guardrail on the steady-state
#      heartbeat path (a race-free run, because race instrumentation
#      allocates inside sync.Pool), and short smoke runs of the
#      inference fast-path and 1,000-host ingest benchmarks, so a
#      regression that breaks the compiled path, the pooled codec or
#      the sharded merge shows up even when no test asserts on speed
#
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal ./*.go)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== observability gate: vet + race tests + exposition golden"
go vet ./internal/obs/...
go test -race ./internal/obs/...

# Metric-name lint: every metric family declared as a Metric* constant
# must live in the autoglobe_ namespace and end in a conventional unit
# suffix, so the exposition stays scrapeable and greppable.
bad=$(grep -rhoE 'Metric[A-Za-z]+ += +"[^"]*"' internal --include='metrics.go' |
	grep -vE '= +"autoglobe_[a-z_]+_(total|seconds|minutes)"' || true)
if [ -n "$bad" ]; then
	echo "metric-name lint: families outside the naming convention:" >&2
	echo "$bad" >&2
	exit 1
fi

echo "== robustness gate: chaos smoke + journal fuzz seed corpus"
# The fixed-seed chaos convergence run and the journal crash-point
# sweep are the acceptance tests of the crash-safety work: a full
# simulated day under fault injection must converge to the fault-free
# landscape, and a coordinator killed at every journal-record boundary
# must neither duplicate nor lose an action.
go test -race -run 'TestChaosConvergesToFaultFreeLandscape' ./internal/simulator/
go test -race -run 'TestCrashPointSweep' ./internal/agent/
# Replay the fuzz targets over their checked-in seed corpus (plain
# `go test` runs every seed as a unit case — no -fuzz, no randomness).
go test -race -run 'Fuzz' ./internal/journal/
go test -race -run 'Fuzz' ./internal/wire/

echo "== go test -race ./..."
go test -race ./...

echo "== perf gate: zero-alloc heartbeat path (race-free run)"
# The steady-state heartbeat path — reporter batching, binary frame
# codec, loopback delivery, coordinator shard buffering, pooled ack —
# must allocate nothing. The test skips itself under -race (race
# instrumentation allocates inside sync.Pool), so it gets a dedicated
# race-free invocation here.
go test -run 'TestHeartbeatPathZeroAlloc' -count=1 ./internal/agent/

echo "== benchmark smoke: FuzzyInference (100 iterations)"
go test -run XXX -bench 'BenchmarkFuzzyInference$' -benchtime=100x -benchmem .

echo "== benchmark smoke: CoordinatorIngest1k (one 1,000-host minute)"
go test -run XXX -bench 'BenchmarkCoordinatorIngest1k$' -benchtime=1x -benchmem .

echo "check.sh: all gates passed"
