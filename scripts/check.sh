#!/bin/sh
# scripts/check.sh — the tier-1 gate (see ROADMAP.md).
#
# Runs, in order:
#   1. go vet            over every package
#   2. go build          over every package
#   3. go test -race     the full suite under the race detector
#      (exercises the parallel sweep engine, the shared compiled rule
#      bases and the simulator-isolation tests concurrently)
#   4. a short smoke run of the inference fast-path benchmark, so a
#      regression that breaks the compiled path or its pooling shows up
#      even when no test asserts on speed
#
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== benchmark smoke: FuzzyInference (100 iterations)"
go test -run XXX -bench 'BenchmarkFuzzyInference$' -benchtime=100x -benchmem .

echo "check.sh: all gates passed"
