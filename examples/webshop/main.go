// webshop shows AutoGlobe administering a landscape other than the
// paper's SAP installation: a web shop with a storefront, a search
// service and a checkout service sharing one database on a small blade
// pool. The landscape is described in the declarative XML language, the
// workload peaks in the evening (shoppers after work), and a flash-sale
// burst tests the controller's reaction.
//
//	go run ./examples/webshop
package main

import (
	"fmt"
	"log"

	"autoglobe/internal/console"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
	"autoglobe/internal/spec"
	"autoglobe/internal/workload"
)

const landscapeXML = `<?xml version="1.0"?>
<landscape name="webshop">
  <servers>
    <server name="web1" category="blade" performanceIndex="1" cpus="1" clockMHz="2000" cacheKB="512" memoryMB="2048" swapMB="2048" tempMB="20480"/>
    <server name="web2" category="blade" performanceIndex="1" cpus="1" clockMHz="2000" cacheKB="512" memoryMB="2048" swapMB="2048" tempMB="20480"/>
    <server name="web3" category="blade" performanceIndex="1" cpus="1" clockMHz="2000" cacheKB="512" memoryMB="2048" swapMB="2048" tempMB="20480"/>
    <server name="web4" category="blade" performanceIndex="2" cpus="2" clockMHz="2000" cacheKB="512" memoryMB="4096" swapMB="4096" tempMB="20480"/>
    <server name="dbhost" category="server" performanceIndex="6" cpus="4" clockMHz="2800" cacheKB="2048" memoryMB="12288" swapMB="12288" tempMB="40960"/>
  </servers>
  <services>
    <service name="storefront" type="interactive" subsystem="shop" minInstances="1" memoryMBPerInstance="1024" baseLoad="0.05" usersPerUnit="150" requestWeight="1.0" users="260">
      <allowedActions>
        <action>scaleIn</action><action>scaleOut</action>
        <action>scaleUp</action><action>scaleDown</action><action>move</action>
      </allowedActions>
      <instances><instance host="web1"/><instance host="web2"/></instances>
    </service>
    <service name="search" type="interactive" subsystem="shop" minInstances="1" memoryMBPerInstance="1024" baseLoad="0.05" usersPerUnit="150" requestWeight="1.5" users="120">
      <allowedActions>
        <action>scaleIn</action><action>scaleOut</action><action>move</action>
      </allowedActions>
      <instances><instance host="web3"/></instances>
    </service>
    <service name="checkout" type="interactive" subsystem="shop" minInstances="1" memoryMBPerInstance="1024" baseLoad="0.05" usersPerUnit="150" requestWeight="2.0" users="90">
      <allowedActions>
        <action>scaleIn</action><action>scaleOut</action><action>move</action>
      </allowedActions>
      <instances><instance host="web4"/></instances>
    </service>
    <service name="DB-shop" type="database" subsystem="shop" minInstances="1" maxInstances="1" minPerformanceIndex="5" memoryMBPerInstance="6144" baseLoad="0.02">
      <instances><instance host="dbhost"/></instances>
    </service>
  </services>
</landscape>`

func main() {
	landscape, err := spec.ParseString(landscapeXML)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := landscape.BuildDeployment()
	if err != nil {
		log.Fatal(err)
	}

	// Evening-heavy shopping curve with a lunch bump and a 20:00 flash
	// sale.
	shopping := workload.MustProfile("shopping",
		workload.Point{Minute: 0, Value: 0.06},
		workload.Point{Minute: 7 * 60, Value: 0.10},
		workload.Point{Minute: 12 * 60, Value: 0.45},
		workload.Point{Minute: 14 * 60, Value: 0.30},
		workload.Point{Minute: 18 * 60, Value: 0.70},
		workload.Point{Minute: 19*60 + 45, Value: 0.75},
		workload.Point{Minute: 20 * 60, Value: 1.00}, // flash sale
		workload.Point{Minute: 21 * 60, Value: 0.95},
		workload.Point{Minute: 22*60 + 30, Value: 0.30},
	)
	gen := workload.MustGenerator(workload.Jitter{Seed: 7, Amplitude: 0.04},
		workload.Source{Service: "storefront", Users: 260, Profile: shopping},
		workload.Source{Service: "search", Users: 120, Profile: shopping},
		workload.Source{Service: "checkout", Users: 90, Profile: shopping},
	)

	cfg := simulator.PaperConfig(service.FullMobility, 1.0)
	cfg.Hours = 48
	cfg.RecordServices = []string{"storefront"}
	sim, err := simulator.NewCustom(cfg, dep, gen)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("web shop under AutoGlobe,", cfg.Hours, "hours with a nightly flash sale:")
	fmt.Println(res)
	fmt.Println()
	counts := res.ActionCounts()
	for _, a := range service.Actions() {
		if counts[a] > 0 {
			fmt.Printf("  %-10s ×%d\n", a, counts[a])
		}
	}
	fmt.Println()
	fmt.Println(console.ServiceView(sim.Deployment(), sim.Archive()))
}
