// sapinstall reproduces the paper's evaluation workflow end to end: it
// simulates the SAP installation of Figure 9/11 under all three
// scenarios at +15 % users, prints the per-scenario outcome (the story
// of Figures 12–14), shows the FI application servers' behaviour with
// the controller's action annotations (Figures 15–17), and finishes
// with a console snapshot.
//
//	go run ./examples/sapinstall
package main

import (
	"fmt"
	"log"

	"autoglobe/internal/console"
	"autoglobe/internal/service"
	"autoglobe/internal/simulator"
)

func main() {
	const multiplier = 1.15

	for _, m := range []service.Mobility{
		service.Static, service.ConstrainedMobility, service.FullMobility,
	} {
		cfg := simulator.PaperConfig(m, multiplier)
		cfg.RecordServices = []string{"FI"}
		sim, err := simulator.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s scenario, %.0f%% users ===\n", m, multiplier*100)
		fmt.Println(res)
		counts := res.ActionCounts()
		if len(counts) > 0 {
			fmt.Print("  actions:")
			for _, a := range service.Actions() {
				if counts[a] > 0 {
					fmt.Printf(" %s×%d", a, counts[a])
				}
			}
			fmt.Println()
		}
		// The FI story of Figures 15–17: how many distinct hosts did FI
		// instances visit, and how bad was the worst FI episode?
		var worstFI float64
		for key, pts := range res.ServiceHostSeries {
			_ = key
			for _, p := range pts {
				if p.Load > worstFI {
					worstFI = p.Load
				}
			}
		}
		fmt.Printf("  FI ran on %d distinct hosts; worst FI instance load %.0f%%\n",
			len(res.ServiceHostSeries), worstFI*100)
		verdict := "handles the load"
		if res.Overloaded(simulator.DefaultOverloadBudget, simulator.DefaultStreakBudget) {
			verdict = "is OVERLOADED"
		}
		fmt.Printf("  verdict: the installation %s at %.0f%%\n\n", verdict, multiplier*100)

		// Console snapshot for the last scenario.
		if m == service.FullMobility {
			fmt.Println(console.ServerView(sim.Deployment(), sim.Archive()))
			fmt.Println()
			fmt.Println(console.MessageView(sim.Controller().Events(), 10))
		}
	}
}
