// operations is a day-in-the-life tour of AutoGlobe's operator surface:
// the controller runs in semi-automatic mode, so decisions wait for a
// human; a security guard decides who may confirm them and audits every
// attempt; the ServiceGlobe federation keeps client traffic flowing
// across the resulting relocation; and a failing binding layer shows
// the transactional executor rolling an action back cleanly.
//
//	go run ./examples/operations
package main

import (
	"errors"
	"fmt"
	"log"

	"autoglobe/internal/archive"
	"autoglobe/internal/cluster"
	"autoglobe/internal/controller"
	"autoglobe/internal/monitor"
	"autoglobe/internal/registry"
	"autoglobe/internal/security"
	"autoglobe/internal/service"
)

func main() {
	// Landscape: two blades and a strong server, one interactive service.
	cl := cluster.MustNew(
		cluster.Host{Name: "blade1", Category: "blade", PerformanceIndex: 1, CPUs: 1,
			ClockMHz: 933, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
		cluster.Host{Name: "blade2", Category: "blade", PerformanceIndex: 2, CPUs: 2,
			ClockMHz: 933, CacheKB: 512, MemoryMB: 4096, SwapMB: 4096, TempMB: 20480},
		cluster.Host{Name: "big1", Category: "server", PerformanceIndex: 9, CPUs: 4,
			ClockMHz: 2800, CacheKB: 2048, MemoryMB: 12288, SwapMB: 12288, TempMB: 20480},
	)
	allowed := map[service.Action]bool{}
	for _, a := range service.Actions() {
		allowed[a] = true
	}
	cat := service.MustCatalog(&service.Service{
		Name: "orders", Type: service.TypeInteractive, MinInstances: 1,
		Allowed: allowed, MemoryMBPerInstance: 1024, UsersPerUnit: 150, RequestWeight: 1,
	})
	dep := service.NewDeployment(cl, cat)
	inst, err := dep.Start("orders", "blade1")
	if err != nil {
		log.Fatal(err)
	}
	inst.Users = 140

	// ServiceGlobe federation: hosts join, the deployment is mirrored,
	// clients route by service name.
	fed := registry.NewFederation()
	for _, h := range cl.Names() {
		if err := fed.Join(h); err != nil {
			log.Fatal(err)
		}
	}
	inner := controller.NewDeploymentExecutor(dep, controller.RebalanceUsers)
	mirror, err := registry.NewMirror(fed, dep, inner)
	if err != nil {
		log.Fatal(err)
	}
	router := registry.NewRouter(fed)
	ep, _ := router.Route("orders")
	fmt.Printf("client reaches orders at service IP %v (bound to %s)\n", ep.ServiceIP, ep.Host)

	// Controller in semi-automatic mode behind the security console.
	arch := archive.New(0)
	ctl, err := controller.New(controller.Config{Mode: controller.SemiAutomatic}, dep, arch, mirror)
	if err != nil {
		log.Fatal(err)
	}
	guard := security.NewGuard()
	guard.Register(security.Principal{Name: "vera", Roles: []security.Role{security.RoleViewer}})
	guard.Register(security.Principal{Name: "olive", Roles: []security.Role{security.RoleOperator}})
	console, err := security.NewConsole(guard, ctl)
	if err != nil {
		log.Fatal(err)
	}

	// A sustained overload is confirmed; the controller proposes a
	// remedy but waits for confirmation.
	for m := 0; m <= 10; m++ {
		arch.Record(archive.HostEntity("blade1"), archive.Sample{Minute: m, CPU: 0.92, Mem: 0.5})
		arch.Record(archive.HostEntity("blade2"), archive.Sample{Minute: m, CPU: 0.15, Mem: 0.2})
		arch.Record(archive.HostEntity("big1"), archive.Sample{Minute: m, CPU: 0.05, Mem: 0.2})
		arch.Record(archive.InstanceEntity(inst.ID), archive.Sample{Minute: m, CPU: 0.9})
		arch.Record(archive.ServiceEntity("orders"), archive.Sample{Minute: m, CPU: 0.55})
	}
	if _, err := ctl.HandleTrigger(monitor.Trigger{
		Kind: monitor.ServiceOverloaded, Entity: "orders",
		Minute: 10, WatchedFrom: 0, AvgLoad: 0.9,
	}); err != nil {
		log.Fatal(err)
	}
	pending, _ := console.Pending("vera")
	fmt.Printf("pending decision: %s\n", pending[0])
	fmt.Println("why the controller proposes it:")
	fmt.Println(pending[0].Explain())

	// The viewer may look but not touch.
	if _, err := console.Approve("vera", 0); err != nil {
		fmt.Printf("vera tries to approve: %v\n", err)
	}
	// The operator confirms; the action executes through the
	// transactional executor and the federation rebinds the service IP.
	d, err := console.Approve("olive", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("olive approves: %s executed\n", d)
	after, _ := router.RouteAddr(ep.ServiceIP)
	fmt.Printf("same service IP %v now bound to %s — clients never noticed\n",
		ep.ServiceIP, after.Host)

	// Later, the binding layer has an outage: the transactional
	// executor rolls the whole action back instead of leaving the
	// landscape half-administered.
	inner.PostStep = func(*controller.Decision) error {
		return errors.New("binding layer outage")
	}
	hostBefore := after.Host
	err = inner.Execute(&controller.Decision{
		Trigger: monitor.Trigger{Minute: 60}, Action: service.ActionScaleDown,
		Service: "orders", InstanceID: inst.ID, TargetHost: "blade2", SourceHost: hostBefore,
	})
	fmt.Printf("scale-down during outage: %v\n", err)
	now, _ := dep.Instance(inst.ID)
	fmt.Printf("instance still on %s, landscape consistent: %v\n", now.Host, dep.Validate() == nil)

	// The audit trail remembers everything.
	fmt.Println("audit trail:")
	for _, e := range guard.Audit() {
		fmt.Printf("  %s\n", e)
	}
}
