// missioncritical demonstrates the administrator-facing extension
// points: a service-specific rule base that makes the controller prefer
// powerful servers for a mission-critical service, an explicit capacity
// reservation for a payroll batch window (the paper's Section 7 plans),
// and the landscape designer computing an optimized pre-assignment.
//
//	go run ./examples/missioncritical
package main

import (
	"fmt"
	"log"

	"autoglobe/internal/archive"
	"autoglobe/internal/cluster"
	"autoglobe/internal/controller"
	"autoglobe/internal/designer"
	"autoglobe/internal/fuzzy"
	"autoglobe/internal/monitor"
	"autoglobe/internal/reservation"
	"autoglobe/internal/service"
)

func main() {
	cl := cluster.MustNew(
		cluster.Host{Name: "blade1", Category: "blade", PerformanceIndex: 1, CPUs: 1,
			ClockMHz: 933, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
		cluster.Host{Name: "blade2", Category: "blade", PerformanceIndex: 2, CPUs: 2,
			ClockMHz: 933, CacheKB: 512, MemoryMB: 4096, SwapMB: 4096, TempMB: 20480},
		cluster.Host{Name: "big1", Category: "server", PerformanceIndex: 9, CPUs: 4,
			ClockMHz: 2800, CacheKB: 2048, MemoryMB: 12288, SwapMB: 12288, TempMB: 40960},
		cluster.Host{Name: "big2", Category: "server", PerformanceIndex: 9, CPUs: 4,
			ClockMHz: 2800, CacheKB: 2048, MemoryMB: 12288, SwapMB: 12288, TempMB: 40960},
	)
	all := map[service.Action]bool{}
	for _, a := range service.Actions() {
		all[a] = true
	}
	cat := service.MustCatalog(
		&service.Service{Name: "billing", Type: service.TypeInteractive, MinInstances: 1,
			Allowed: all, MemoryMBPerInstance: 1024, UsersPerUnit: 150, RequestWeight: 1},
		&service.Service{Name: "reporting", Type: service.TypeBatch, MinInstances: 1,
			Allowed: all, MemoryMBPerInstance: 1024, UsersPerUnit: 15, RequestWeight: 2},
	)

	// 1. Landscape designer: statically optimized pre-assignment.
	plan, err := designer.Design(cl, cat, []designer.Demand{
		{Service: "billing", Instances: 2, UnitsPerInstance: 0.9},
		{Service: "reporting", Instances: 1, UnitsPerInstance: 1.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	dep := service.NewDeployment(cl, cat)
	if err := plan.Apply(dep); err != nil {
		log.Fatal(err)
	}

	// 2. Reservation: payroll needs 70 % of big2 tonight (minutes
	// 1200–1500). The controller must not place anything there.
	book := reservation.NewBook()
	if err := book.Add(reservation.Reservation{
		Task: "payroll", Host: "big2", From: 1200, To: 1500, Fraction: 0.7,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreserved: %d reservation(s); big2 at minute 1300 → %.0f%% reserved\n",
		book.Len(), book.ReservedOn("big2", 1300)*100)

	// 3. Service-specific rule base: billing is mission-critical — on
	// overload it must always move to the most powerful hardware, never
	// just scale out.
	vocab := controller.ActionVocabulary()
	billingRules, err := fuzzy.NewRuleBase("billing-overloaded", vocab, fuzzy.MustParse(`
		IF instanceLoad IS high AND performanceIndex IS NOT high THEN scaleUp IS applicable
		IF instanceLoad IS high AND performanceIndex IS high THEN increasePriority IS applicable
	`))
	if err != nil {
		log.Fatal(err)
	}
	arch := archive.New(0)
	ctl, err := controller.New(controller.Config{
		Reservations: book,
		ServiceRules: map[string]map[monitor.TriggerKind]*fuzzy.RuleBase{
			"billing": {monitor.ServiceOverloaded: billingRules},
		},
	}, dep, arch, controller.NewDeploymentExecutor(dep, controller.RebalanceUsers))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Operations drifted: one billing instance ended up on the weak
	// blade1. Overload it during the payroll window: the
	// mission-critical rule base demands a scale-up, and the target must
	// be blade2 — big1 already runs the other billing instance and big2
	// is reserved for payroll, so the fuzzy server selection rejects it.
	inst := dep.InstancesOf("billing")[0]
	if err := dep.Move(inst.ID, "blade1"); err != nil {
		log.Fatal(err)
	}
	for m := 1290; m <= 1300; m++ {
		arch.Record(archive.HostEntity(inst.Host), archive.Sample{Minute: m, CPU: 0.92, Mem: 0.5})
		arch.Record(archive.InstanceEntity(inst.ID), archive.Sample{Minute: m, CPU: 0.90})
		arch.Record(archive.ServiceEntity("billing"), archive.Sample{Minute: m, CPU: 0.60})
		for _, h := range []string{"blade1", "blade2", "big1", "big2"} {
			if h != inst.Host {
				arch.Record(archive.HostEntity(h), archive.Sample{Minute: m, CPU: 0.10, Mem: 0.2})
			}
		}
	}
	d, err := ctl.HandleTrigger(monitor.Trigger{
		Kind: monitor.ServiceOverloaded, Entity: "billing",
		Minute: 1300, WatchedFrom: 1290, AvgLoad: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	if d == nil {
		fmt.Println("no decision — check the scenario")
		return
	}
	fmt.Printf("\nmission-critical overload: %s (applicability %.2f)\n", d, d.Applicability)
	fmt.Printf("target avoids the reserved host: %s (score %.2f)\n", d.TargetHost, d.HostScore)
}
