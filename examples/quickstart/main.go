// Quickstart: build a tiny virtualized landscape, feed the monitoring
// pipeline a sustained overload, and watch the fuzzy controller pick and
// execute a remedy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autoglobe/internal/archive"
	"autoglobe/internal/cluster"
	"autoglobe/internal/controller"
	"autoglobe/internal/monitor"
	"autoglobe/internal/service"
)

func main() {
	// 1. Pool the hardware: two small blades and one powerful server.
	cl := cluster.MustNew(
		cluster.Host{Name: "blade1", Category: "blade", PerformanceIndex: 1,
			CPUs: 1, ClockMHz: 933, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
		cluster.Host{Name: "blade2", Category: "blade", PerformanceIndex: 1,
			CPUs: 1, ClockMHz: 933, CacheKB: 512, MemoryMB: 2048, SwapMB: 2048, TempMB: 20480},
		cluster.Host{Name: "big1", Category: "server", PerformanceIndex: 9,
			CPUs: 4, ClockMHz: 2800, CacheKB: 2048, MemoryMB: 12288, SwapMB: 12288, TempMB: 20480},
	)

	// 2. Describe the service declaratively: an interactive application
	// server that may be scaled and moved.
	cat := service.MustCatalog(&service.Service{
		Name: "shop", Type: service.TypeInteractive,
		MinInstances: 1,
		Allowed: map[service.Action]bool{
			service.ActionScaleIn: true, service.ActionScaleOut: true,
			service.ActionScaleUp: true, service.ActionScaleDown: true,
			service.ActionMove: true,
		},
		MemoryMBPerInstance: 1024, UsersPerUnit: 150, RequestWeight: 1,
	})

	// 3. Deploy one instance on a small blade.
	dep := service.NewDeployment(cl, cat)
	inst, err := dep.Start("shop", "blade1")
	if err != nil {
		log.Fatal(err)
	}
	inst.Users = 140
	fmt.Printf("deployed %s on %s with %.0f users\n", inst.ID, inst.Host, inst.Users)

	// 4. Wire the monitoring pipeline (paper parameters: 70 % overload
	// threshold, 10 min watchTime) and the fuzzy controller.
	arch := archive.New(0)
	lms, err := monitor.NewSystem(monitor.PaperParams(), arch)
	if err != nil {
		log.Fatal(err)
	}
	lms.Register(archive.HostEntity("blade1"), monitor.Server, 1)
	ctl, err := controller.New(controller.Config{}, dep, arch,
		controller.NewDeploymentExecutor(dep, controller.RebalanceUsers))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Feed a sustained overload: blade1 runs at 92 % CPU. The load
	// monitoring system observes it for the watchTime before confirming
	// a real overload (short peaks would be filtered out).
	for minute := 0; minute <= 10; minute++ {
		// Keep the controller's other inputs fresh too.
		arch.Record(archive.InstanceEntity(inst.ID), archive.Sample{Minute: minute, CPU: 0.90})
		arch.Record(archive.ServiceEntity("shop"), archive.Sample{Minute: minute, CPU: 0.55})
		arch.Record(archive.HostEntity("blade2"), archive.Sample{Minute: minute, CPU: 0.30})
		arch.Record(archive.HostEntity("big1"), archive.Sample{Minute: minute, CPU: 0.05})

		trigger, err := lms.Observe(archive.HostEntity("blade1"), minute, 0.92, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		if trigger == nil {
			fmt.Printf("minute %2d: blade1 at 92%% — observing\n", minute)
			continue
		}
		trigger.Entity = "blade1"
		fmt.Printf("minute %2d: confirmed %s\n", minute, trigger)

		// 6. The controller selects an action (scale-up: hot service on
		// a weak host) and a target host, and executes.
		decision, err := ctl.HandleTrigger(*trigger)
		if err != nil {
			log.Fatal(err)
		}
		if decision == nil {
			fmt.Println("controller found no applicable action")
			continue
		}
		fmt.Printf("controller decided: %s (applicability %.2f, host score %.2f)\n",
			decision, decision.Applicability, decision.HostScore)
	}

	moved, _ := dep.Instance(inst.ID)
	fmt.Printf("instance now runs on %s — overload remedied\n", moved.Host)
}
